#include "cluster/recovery_orchestrator.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace rc::cluster {

namespace {

constexpr sim::Tick kNever = std::numeric_limits<sim::Tick>::max();

/** Goodput buckets: fleet completions per 10 simulated seconds. */
constexpr double kGoodputBucketSeconds = 10.0;

/** Pressure floor from the unavailable fleet fraction. */
int
floorFromFraction(double fraction)
{
    if (fraction >= 0.5)
        return 2;
    if (fraction >= 0.25)
        return 1;
    return 0;
}

} // namespace

RecoveryOrchestrator::RecoveryOrchestrator(const fault::DomainPlan& plan,
                                           const workload::Catalog& catalog,
                                           std::uint64_t seed,
                                           std::size_t nodes,
                                           sim::Tick horizon,
                                           obs::Observer* obs)
    : _plan(plan), _obs(obs), _nodes(nodes), _recs(nodes)
{
    if (catalog.empty())
        sim::panic("RecoveryOrchestrator: empty catalog");
    _repBare = 0;
    for (std::size_t l = 0; l < workload::kLanguageCount; ++l) {
        const auto ids = catalog.functionsOfLanguage(
            static_cast<workload::Language>(l));
        _repLang[l] = ids.empty() ? -1 : static_cast<std::int64_t>(
                                             ids.front());
    }
    _tokenInterval =
        _plan.rejoinTokensPerSecond > 0.0
            ? std::max<sim::Tick>(
                  1, sim::fromSeconds(1.0 / _plan.rejoinTokensPerSecond))
            : 1;

    // Expand the pre-drawn schedules into per-node episode queues.
    // Episodes of one node must not overlap: a wave striking a node
    // still inside an earlier episode (conservatively bounded below)
    // merges into it — the node is already down or warming, there is
    // nothing new to recover. Dropped outage members also do not
    // crash again (their crash event is simply not expanded).
    const auto outages =
        fault::drawOutageSchedule(_plan, seed, nodes, horizon);
    const auto upgrades =
        fault::drawUpgradeSchedule(_plan, seed, nodes, horizon);

    struct Raw
    {
        sim::Tick beginAt;
        sim::Tick downFor;
        bool planned;
        std::size_t wave; //!< outage wave index (planned: unused)
    };
    std::vector<std::vector<Raw>> raw(nodes);
    _waves.reserve(outages.size());
    for (const auto& o : outages) {
        const std::size_t wave = _waves.size();
        _waves.push_back({o.at, o.downUntil - o.at, 0, false});
        for (const std::uint32_t n : o.nodes)
            raw[n].push_back({o.at, o.downUntil - o.at, false, wave});
    }
    for (const auto& u : upgrades)
        raw[u.node].push_back(
            {u.drainAt, u.restartDowntime, true, 0});

    const sim::Tick rejoinSlack =
        _plan.stagedRejoin
            ? sim::fromSeconds(static_cast<double>(nodes) /
                               std::max(_plan.rejoinTokensPerSecond,
                                        1e-9))
            : 0;
    const sim::Tick warmupSlack =
        sim::fromSeconds(_plan.warmupTimeoutSeconds);
    const sim::Tick drainSlack =
        sim::fromSeconds(_plan.drainTimeoutSeconds);
    for (std::size_t n = 0; n < nodes; ++n) {
        auto& events = raw[n];
        std::stable_sort(events.begin(), events.end(),
                         [](const Raw& a, const Raw& b) {
                             return a.beginAt < b.beginAt;
                         });
        sim::Tick busyUntil = 0;
        for (const Raw& e : events) {
            if (e.beginAt < busyUntil)
                continue; // merged into the ongoing episode
            _recs[n].queue.push_back({e.beginAt, e.downFor, e.planned});
            busyUntil = e.beginAt + e.downFor + warmupSlack + rejoinSlack;
            if (e.planned)
                busyUntil += drainSlack;
            else {
                ++_waves[e.wave].nodesStruck;
                _outageCrashes.push_back(
                    {e.beginAt, n, e.beginAt + e.downFor});
            }
        }
    }
    std::sort(_outageCrashes.begin(), _outageCrashes.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                  return a.at != b.at ? a.at < b.at : a.node < b.node;
              });
    for (const CrashEvent& c : _outageCrashes) {
        if (_firstOutageAt == 0 || c.at < _firstOutageAt)
            _firstOutageAt = c.at;
    }
}

sim::Tick
RecoveryOrchestrator::nextActionAt() const
{
    sim::Tick next = kNever;
    for (std::size_t n = 0; n < _nodes; ++n) {
        const NodeRec& rec = _recs[n];
        switch (rec.state) {
        case NodeState::Up:
            if (rec.next < rec.queue.size())
                next = std::min(next, rec.queue[rec.next].beginAt);
            break;
        case NodeState::Draining:
            next = std::min(next, rec.drainDeadline);
            break;
        case NodeState::Down:
            next = std::min(next, rec.downUntil);
            break;
        case NodeState::WaitingRejoin:
            break; // handled by the queue term below
        case NodeState::Warming:
            next = std::min(next, rec.warmupDeadline);
            break;
        }
    }
    if (!_rejoinQueue.empty()) {
        const sim::Tick readyAt = _recs[_rejoinQueue.front()].readyAt;
        next = std::min(next, _plan.stagedRejoin
                                  ? std::max(readyAt, _nextTokenAt)
                                  : readyAt);
    }
    return next;
}

bool
RecoveryOrchestrator::needsNodeProgress() const
{
    for (const NodeRec& rec : _recs) {
        if (rec.state == NodeState::Draining ||
            rec.state == NodeState::Warming) {
            return true;
        }
    }
    return false;
}

void
RecoveryOrchestrator::captureCensus(NodeRec& rec, std::size_t node,
                                    const NodeSummary& summary,
                                    const CensusSource& census) const
{
    if (census) {
        rec.census = census(node);
        return;
    }
    // No census source (summary-only callers, e.g. unit tests):
    // degrade to the idle pools the summary already carries. The User
    // working set is invisible here, so nothing is planned for it.
    rec.census = LayerCensus{};
    rec.census.bare = summary.idleBare;
    rec.census.lang = summary.idleLang;
}

void
RecoveryOrchestrator::beginDown(std::size_t node, sim::Tick at,
                                sim::Tick downFor)
{
    NodeRec& rec = _recs[node];
    rec.state = NodeState::Down;
    rec.downUntil = at + downFor;
    rec.readyAt = rec.downUntil;
}

bool
RecoveryOrchestrator::censusMet(const NodeRec& rec,
                                const NodeSummary& summary) const
{
    if (summary.idleBare < rec.plannedBare)
        return false;
    for (std::size_t l = 0; l < workload::kLanguageCount; ++l) {
        if (summary.idleLang[l] < rec.plannedLang[l])
            return false;
    }
    return summary.idleUser >= rec.plannedUser;
}

void
RecoveryOrchestrator::grantRejoin(std::size_t node, sim::Tick grantAt,
                                  std::vector<RecoveryAction>& actions)
{
    NodeRec& rec = _recs[node];
    const double wait =
        grantAt > rec.readyAt ? sim::toSeconds(grantAt - rec.readyAt)
                              : 0.0;
    _rejoinWaitSeconds += wait;
    if (_obs != nullptr) {
        _obs->counters().bump(obs::Counter::NodesRejoined, grantAt);
        _obs->emit(grantAt, obs::EventType::NodeRejoinGranted, 0,
                   0xffffffffU, static_cast<std::uint8_t>(node), 0,
                   wait);
    }
    // Plan the census warm-up, most specialized capital first: the
    // per-function User working set (what warm starts actually need),
    // then each language's Lang containers, then Bare, truncated at
    // the per-node cap. Hot functions rebuild first: User entries are
    // planned in descending census count.
    rec.plannedBare = 0;
    rec.plannedLang.fill(0);
    rec.plannedUser = 0;
    rec.plannedTotal = 0;
    if (_plan.prewarmEnabled) {
        std::uint32_t budget = _plan.prewarmMaxLayers;
        auto userCensus = rec.census.user;
        std::sort(userCensus.begin(), userCensus.end(),
                  [](const auto& a, const auto& b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        for (const auto& [function, count] : userCensus) {
            const std::uint32_t planned = std::min(count, budget);
            budget -= planned;
            rec.plannedUser += planned;
            for (std::uint32_t i = 0; i < planned; ++i) {
                actions.push_back({RecoveryAction::kPrewarm, grantAt,
                                   static_cast<std::uint32_t>(node), 0,
                                   function, workload::Layer::User});
            }
        }
        for (std::size_t l = 0; l < workload::kLanguageCount; ++l) {
            if (_repLang[l] < 0)
                continue; // no function of this language deployed
            rec.plannedLang[l] = std::min(rec.census.lang[l], budget);
            budget -= rec.plannedLang[l];
            for (std::uint32_t i = 0; i < rec.plannedLang[l]; ++i) {
                actions.push_back(
                    {RecoveryAction::kPrewarm, grantAt,
                     static_cast<std::uint32_t>(node), 0,
                     static_cast<workload::FunctionId>(_repLang[l]),
                     workload::Layer::Lang});
            }
        }
        rec.plannedBare = std::min(rec.census.bare, budget);
        for (std::uint32_t i = 0; i < rec.plannedBare; ++i) {
            actions.push_back({RecoveryAction::kPrewarm, grantAt,
                               static_cast<std::uint32_t>(node), 0,
                               _repBare, workload::Layer::Bare});
        }
        rec.plannedTotal = rec.plannedBare + rec.plannedUser;
        for (std::size_t l = 0; l < workload::kLanguageCount; ++l)
            rec.plannedTotal += rec.plannedLang[l];
    }
    if (rec.plannedTotal > 0) {
        rec.state = NodeState::Warming;
        rec.warmupDeadline =
            grantAt + sim::fromSeconds(_plan.warmupTimeoutSeconds);
    } else {
        complete(node, grantAt);
    }
}

void
RecoveryOrchestrator::complete(std::size_t node, sim::Tick at)
{
    NodeRec& rec = _recs[node];
    if (_obs != nullptr) {
        _obs->emit(at, obs::EventType::NodeWarmupDone, 0, 0xffffffffU,
                   static_cast<std::uint8_t>(node), 0,
                   static_cast<double>(rec.plannedTotal));
    }
    ++_recoveredNodes;
    rec.state = NodeState::Up;
    ++rec.next;
    rec.census = LayerCensus{};
    rec.plannedBare = 0;
    rec.plannedLang.fill(0);
    rec.plannedUser = 0;
    rec.plannedTotal = 0;
}

int
RecoveryOrchestrator::onBarrier(sim::Tick windowStart,
                                sim::Tick windowEnd,
                                std::vector<NodeSummary>& summaries,
                                std::uint64_t offered,
                                const CensusSource& census,
                                std::vector<RecoveryAction>& actions)
{
    // Goodput sample: attribute completions and offered load since
    // the last barrier to the bucket containing this barrier instant.
    std::uint64_t completed = 0;
    for (const NodeSummary& s : summaries)
        completed += s.successes;
    const auto bucket = static_cast<std::size_t>(
        sim::toSeconds(windowStart) / kGoodputBucketSeconds);
    if (completed > _lastCompleted) {
        if (_goodputBuckets.size() <= bucket)
            _goodputBuckets.resize(bucket + 1, 0);
        _goodputBuckets[bucket] += completed - _lastCompleted;
        _lastCompleted = completed;
    }
    if (offered > _lastOffered) {
        if (_offeredBuckets.size() <= bucket)
            _offeredBuckets.resize(bucket + 1, 0);
        _offeredBuckets[bucket] += offered - _lastOffered;
        _lastOffered = offered;
    }
    _lastSampleAt = windowStart;

    // Correlated waves striking inside this window announce
    // themselves once (their per-node crashes ride the cluster crash
    // schedule).
    for (Wave& wave : _waves) {
        if (wave.emitted || wave.at >= windowEnd)
            continue;
        wave.emitted = true;
        if (wave.nodesStruck == 0)
            continue; // every member merged into an earlier episode
        ++_domainOutages;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::DomainOutages, wave.at);
            _obs->emit(wave.at, obs::EventType::DomainOutage, 0,
                       0xffffffffU,
                       static_cast<std::uint8_t>(
                           std::min<std::uint32_t>(wave.nodesStruck,
                                                   255)),
                       0, sim::toSeconds(wave.downFor));
        }
    }

    // Per-node FSM, ascending node order (determinism).
    for (std::size_t n = 0; n < _nodes; ++n) {
        NodeRec& rec = _recs[n];
        if (rec.state == NodeState::Up) {
            if (rec.next >= rec.queue.size())
                continue;
            const Episode& e = rec.queue[rec.next];
            if (e.beginAt >= windowEnd)
                continue;
            // The episode begins inside this window: snapshot the
            // pre-failure census now — node state is as of the last
            // barrier, before the crash or drain lands.
            captureCensus(rec, n, summaries[n], census);
            if (e.planned) {
                ++_upgradeEpisodes;
                rec.state = NodeState::Draining;
                rec.drainDeadline =
                    e.beginAt +
                    sim::fromSeconds(_plan.drainTimeoutSeconds);
                if (_obs != nullptr) {
                    _obs->counters().bump(obs::Counter::NodesDrained,
                                          e.beginAt);
                    _obs->emit(e.beginAt,
                               obs::EventType::NodeDrainStarted, 0,
                               0xffffffffU,
                               static_cast<std::uint8_t>(n), 0,
                               sim::toSeconds(e.downFor));
                }
            } else {
                ++_outageNodeEpisodes;
                beginDown(n, e.beginAt, e.downFor);
            }
        }
        switch (rec.state) {
        case NodeState::Up:
            break;
        case NodeState::Draining: {
            const Episode& e = rec.queue[rec.next];
            if (windowStart < e.beginAt)
                break; // drain starts mid-window; judge next barrier
            const bool empty = summaries[n].inFlightPlusQueued == 0;
            if (empty || windowStart >= rec.drainDeadline) {
                if (empty)
                    ++_nodesDrained;
                else
                    ++_nodesKilled;
                if (_obs != nullptr) {
                    _obs->emit(windowStart, obs::EventType::NodeDrained,
                               0, 0xffffffffU,
                               static_cast<std::uint8_t>(n),
                               empty ? 0 : 1);
                }
                beginDown(n, windowStart, e.downFor);
                actions.push_back({RecoveryAction::kCrashNode,
                                   windowStart,
                                   static_cast<std::uint32_t>(n),
                                   rec.downUntil, 0,
                                   workload::Layer::Bare});
                summaries[n].down = 1;
            }
            break;
        }
        case NodeState::Down:
            if (windowStart >= rec.downUntil) {
                rec.state = NodeState::WaitingRejoin;
                _rejoinQueue.push_back(
                    static_cast<std::uint32_t>(n));
            }
            break;
        case NodeState::WaitingRejoin:
            break;
        case NodeState::Warming:
            if (windowStart >= rec.warmupDeadline ||
                censusMet(rec, summaries[n])) {
                complete(n, windowStart);
            }
            break;
        }
        if (rec.state != NodeState::Up)
            summaries[n].recovering = 1;
    }

    // Token-gated readmission, (readyAt, node) order. Naive mode
    // grants every restarted node at once — the thundering herd the
    // staged path exists to avoid.
    std::sort(_rejoinQueue.begin(), _rejoinQueue.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  const sim::Tick ra = _recs[a].readyAt;
                  const sim::Tick rb = _recs[b].readyAt;
                  return ra != rb ? ra < rb : a < b;
              });
    while (!_rejoinQueue.empty()) {
        const std::uint32_t n = _rejoinQueue.front();
        sim::Tick grantAt = _recs[n].readyAt;
        if (_plan.stagedRejoin)
            grantAt = std::max(grantAt, _nextTokenAt);
        if (grantAt >= windowEnd)
            break;
        grantAt = std::max(grantAt, windowStart);
        _rejoinQueue.erase(_rejoinQueue.begin());
        if (_plan.stagedRejoin)
            _nextTokenAt = grantAt + _tokenInterval;
        grantRejoin(n, grantAt, actions);
        if (_recs[n].state != NodeState::Up)
            summaries[n].recovering = 1;
        else
            summaries[n].recovering = 0;
    }

    // Recovery backpressure: survivors tighten their belts while a
    // chunk of the fleet is out.
    std::size_t unavailable = 0;
    for (const NodeSummary& s : summaries) {
        if (s.down != 0 || s.recovering != 0)
            ++unavailable;
    }
    return floorFromFraction(static_cast<double>(unavailable) /
                             static_cast<double>(_nodes));
}

void
RecoveryOrchestrator::finishPending(sim::Tick now)
{
    for (std::size_t n = 0; n < _nodes; ++n) {
        NodeRec& rec = _recs[n];
        switch (rec.state) {
        case NodeState::Up:
            continue;
        case NodeState::Draining:
            // The run ended while the node drained; the final drain
            // lets its in-flight work finish, so it counts graceful.
            ++_nodesDrained;
            if (_obs != nullptr) {
                _obs->emit(now, obs::EventType::NodeDrained, 0,
                           0xffffffffU, static_cast<std::uint8_t>(n),
                           0);
            }
            rec.readyAt = now;
            break;
        case NodeState::Down:
        case NodeState::WaitingRejoin:
            break;
        case NodeState::Warming:
            complete(n, now);
            continue;
        }
        // Grant with the wait accrued so far; no prewarms — the
        // nodes are about to finalize.
        const sim::Tick readyAt = rec.readyAt;
        const double wait =
            now > readyAt ? sim::toSeconds(now - readyAt) : 0.0;
        _rejoinWaitSeconds += wait;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::NodesRejoined, now);
            _obs->emit(now, obs::EventType::NodeRejoinGranted, 0,
                       0xffffffffU, static_cast<std::uint8_t>(n), 0,
                       wait);
        }
        rec.plannedTotal = 0;
        complete(n, now);
    }
    _rejoinQueue.clear();
}

void
RecoveryOrchestrator::report(ClusterResult& result) const
{
    result.domainOutages = _domainOutages;
    result.outageNodeEpisodes = _outageNodeEpisodes;
    result.upgradeEpisodes = _upgradeEpisodes;
    result.nodesDrained = _nodesDrained;
    result.nodesKilled = _nodesKilled;
    result.recoveredNodes = _recoveredNodes;
    result.rejoinWaitSeconds = _rejoinWaitSeconds;

    // Time to goodput: how long from the outage until the fleet
    // durably completes >= 90% of what clients offer it. Measured as
    // a trailing 3-bucket completion ratio (completions / offered
    // load, 10 s buckets) — a ratio, not an absolute rate, so bursty
    // arrival processes do not read as goodput collapses. The clock
    // stops after the *last* post-outage bucket whose trailing ratio
    // is below 0.9, so a single lucky bucket in the middle of a
    // collapse (or a retry storm that re-dips later) does not end it.
    result.timeToGoodputSeconds = 0.0;
    if (_firstOutageAt == 0 || _goodputBuckets.empty())
        return;
    const double outageSeconds = sim::toSeconds(_firstOutageAt);
    const auto outageBucket =
        static_cast<std::size_t>(outageSeconds / kGoodputBucketSeconds);
    const auto ratioAt = [this](std::size_t b) {
        std::uint64_t done = 0;
        std::uint64_t asked = 0;
        for (std::size_t k = b; k + 3 > b; --k) {
            if (k < _goodputBuckets.size())
                done += _goodputBuckets[k];
            if (k < _offeredBuckets.size())
                asked += _offeredBuckets[k];
            if (k == 0)
                break;
        }
        // An idle trailing window owes nothing and counts as healthy.
        return asked == 0 ? 1.0
                          : static_cast<double>(done) /
                                static_cast<double>(asked);
    };
    // The final bucket is usually a partial window; judge it only if
    // the run ends still collapsed.
    const std::size_t usable =
        std::max<std::size_t>(_goodputBuckets.size(), 1) - 1;
    std::size_t lastBad = _goodputBuckets.size();
    for (std::size_t b = outageBucket; b < usable; ++b) {
        if (ratioAt(b) < 0.9)
            lastBad = b;
    }
    if (lastBad == _goodputBuckets.size())
        return; // the fleet absorbed the outage without a dip
    result.timeToGoodputSeconds = std::max(
        0.0, static_cast<double>(lastBad + 1) * kGoodputBucketSeconds -
                 outageSeconds);
}

} // namespace rc::cluster
