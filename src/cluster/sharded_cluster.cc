#include "cluster/sharded_cluster.hh"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "stats/quantile_sketch.hh"

namespace rc::cluster {

namespace {

/** Threads actually worth spawning for @p shards partitions. */
std::size_t
defaultThreads(std::size_t shards)
{
    const std::size_t hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(1, std::min(shards, hw == 0 ? 1 : hw));
}

} // namespace

ShardedCluster::ShardedCluster(const workload::Catalog& catalog,
                               const PolicyFactory& factory,
                               ClusterConfig config, ShardedConfig sharded)
    : _catalog(catalog), _config(config), _sharded(sharded),
      _scheduler(config.scheduling, catalog)
{
    if (config.nodes == 0)
        sim::fatal("ShardedCluster: need at least one node");
    // Same observer rule as the legacy Cluster: one Observer cannot
    // span several engine timelines, so nodes run uninstrumented and
    // the configured observer collects cluster-level events only —
    // emitted exclusively by the single-threaded coordinator. Spans
    // are the exception: each node gets a private span-only Observer
    // (touched only by that node's shard worker), merged after the
    // drain on partition-independent keys.
    _obs = config.node.observer;
    const bool spans = _obs != nullptr && _obs->spansEnabled();
    for (std::size_t i = 0; i < config.nodes; ++i) {
        platform::NodeConfig nodeConfig = config.node;
        nodeConfig.seed = config.node.seed + i; // independent exec draws
        nodeConfig.observer = nullptr;
        if (spans) {
            obs::ObserverConfig spanConfig;
            spanConfig.traceEnabled = false;
            spanConfig.profilingEnabled = false;
            spanConfig.counterInterval = _obs->config().counterInterval;
            spanConfig.spansEnabled = true;
            spanConfig.maxSpans = _obs->config().maxSpans;
            auto nodeObs = std::make_unique<obs::Observer>(spanConfig);
            nodeObs->setSpanNode(static_cast<std::uint16_t>(i));
            nodeConfig.observer = nodeObs.get();
            _nodeObservers.push_back(std::move(nodeObs));
        }
        _nodes.push_back(std::make_unique<platform::Node>(
            _catalog, factory(), nodeConfig));
    }
    const admission::AdmissionPlan& admission = config.node.admission;
    if (admission.breakerFailureThreshold > 0.0) {
        admission::CircuitBreaker::Config breaker;
        breaker.failureThreshold = admission.breakerFailureThreshold;
        breaker.window = sim::fromSeconds(admission.breakerWindowSeconds);
        breaker.cooloff =
            sim::fromSeconds(admission.breakerCooloffSeconds);
        breaker.minSamples = admission.breakerMinSamples;
        _breakers.assign(_nodes.size(),
                         admission::CircuitBreaker(breaker));
    }

    _lookahead = _sharded.lookahead > 0
                     ? _sharded.lookahead
                     : core::CostModel(_sharded.cost).crossShardLookahead();

    // Round-robin node -> shard assignment balances load; the mapping
    // never influences results (see header), only wall-clock.
    const std::size_t shards =
        std::max<std::size_t>(1, std::min(_sharded.shards, _nodes.size()));
    _shards.resize(shards);
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        _shards[i % shards].nodes.push_back(i);
    _threads = _sharded.threads > 0
                   ? std::min(_sharded.threads, shards)
                   : defaultThreads(shards);

    _summaries.resize(_nodes.size());
    _inboxes.resize(_nodes.size());
    _seenFailures.assign(_nodes.size(), 0);
    _seenSuccesses.assign(_nodes.size(), 0);
    _seenTransitions.assign(_nodes.size(), 0);
}

NodeSummary
ShardedCluster::captureSummary(platform::Node& node) const
{
    NodeSummary s;
    s.down = node.isDown() ? 1 : 0;
    s.inFlightPlusQueued = static_cast<std::uint32_t>(
        node.invoker().inFlightInvocations() +
        node.invoker().queuedInvocations());
    s.usedMemoryMb = node.pool().usedMemoryMb();
    s.idleBare = static_cast<std::uint32_t>(node.pool().idleBareCount());
    for (std::size_t l = 0; l < workload::kLanguageCount; ++l) {
        s.idleLang[l] = static_cast<std::uint32_t>(
            node.pool().idleLangCount(static_cast<workload::Language>(l)));
    }
    s.failures = node.invoker().failedInvocations();
    s.successes = node.metrics().total();
    return s;
}

void
ShardedCluster::runShardWindow(Shard& shard, sim::Tick windowEnd)
{
    const sim::Tick failoverHop = std::max(
        _lookahead, sim::fromMillis(_sharded.cost.failoverHopMillis));
    for (const std::size_t index : shard.nodes) {
        platform::Node& node = *_nodes[index];
        std::vector<ShardInput>& inbox = _inboxes[index];
        // Idle fast path: a node with no inputs and no event due
        // before the barrier does nothing this window, and its
        // summary cannot have changed — skip it entirely. The check
        // reads only this node's state, so it is independent of the
        // shard partitioning.
        if (inbox.empty() && node.engine().nextEventAt() >= windowEnd)
            continue;
        if (!inbox.empty()) {
            // The coordinator appends per stream (failover, arrivals,
            // crashes), so a node's inbox can interleave; one sort
            // restores the global (tick, kind, seq) drain order.
            std::sort(inbox.begin(), inbox.end(), shardInputBefore);
            for (const ShardInput& input : inbox) {
                node.advanceTo(input.tick);
                if (input.kind == ShardInput::kCrash) {
                    const auto lost = node.crashNow(input.downUntil);
                    shard.crashLog.push_back(
                        {input.tick, static_cast<std::uint32_t>(index),
                         input.downUntil,
                         static_cast<std::uint32_t>(lost.size())});
                    // Displaced work re-enters at the next barrier,
                    // one failover hop after the crash. The hop is
                    // >= the lookahead by construction, so delivery
                    // never lands inside this window.
                    std::uint32_t i = 0;
                    for (const auto& ticket : lost) {
                        shard.outbox.push_back(
                            {std::max(windowEnd,
                                      input.tick + failoverHop),
                             input.tick,
                             static_cast<std::uint32_t>(index), i++,
                             ticket.function, ticket.originSpan});
                    }
                } else {
                    node.invokeNow(input.function, input.originSpan);
                }
            }
            inbox.clear();
        }
        // Windows are half-open: drain everything strictly before the
        // barrier, then publish this node's summary slot.
        node.advanceTo(windowEnd - 1);
        _summaries[index] = captureSummary(node);
    }
}

void
ShardedCluster::refreshBreakers(sim::Tick now)
{
    if (_breakers.empty())
        return;
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        admission::CircuitBreaker& breaker = _breakers[i];
        // Feed outcome deltas from the barrier summaries — the
        // sharded analogue of the legacy per-arrival breaker feed.
        for (; _seenFailures[i] < _summaries[i].failures;
             ++_seenFailures[i])
            breaker.recordFailure(now);
        for (; _seenSuccesses[i] < _summaries[i].successes;
             ++_seenSuccesses[i])
            breaker.recordSuccess(now);
        _summaries[i].tripped = breaker.allows(now) ? 0 : 1;
        const auto& transitions = breaker.transitions();
        for (; _seenTransitions[i] < transitions.size();
             ++_seenTransitions[i]) {
            const auto& tr = transitions[_seenTransitions[i]];
            if (_obs == nullptr)
                continue;
            if (tr.to == admission::CircuitBreaker::State::Open) {
                _obs->counters().bump(obs::Counter::BreakerOpenTotal,
                                      tr.at);
            }
            _obs->emit(tr.at, obs::EventType::BreakerStateChanged, 0,
                       0xffffffffU, static_cast<std::uint8_t>(tr.to),
                       static_cast<std::uint8_t>(tr.from),
                       static_cast<double>(i));
        }
    }
}

ClusterResult
ShardedCluster::run(const std::vector<trace::Arrival>& arrivals)
{
    ClusterResult result;
    result.schedulingName = toString(_config.scheduling);

    sim::Tick horizon = 0;
    for (const auto& arrival : arrivals)
        horizon = std::max(horizon, arrival.time);

    for (auto& node : _nodes)
        node->armAdmission(horizon);
    const fault::FaultPlan& plan = _config.node.fault;
    if (plan.active()) {
        for (auto& node : _nodes)
            node->armFaults(horizon, /*manageNodeCrashes=*/false);
    }
    const std::vector<CrashEvent> crashes = drawCrashSchedule(
        plan, _config.node.seed, _nodes.size(), horizon);

    const sim::Tick L = _lookahead;
    // Staleness cap, rounded up to whole windows so every barrier
    // stays on the lookahead grid.
    const sim::Tick maxStride =
        std::max(L, (_sharded.maxSummaryStaleness + L - 1) / L * L);

    for (std::size_t i = 0; i < _nodes.size(); ++i)
        _summaries[i] = captureSummary(*_nodes[i]);

    sim::ShardExecutor executor(_threads);
    const auto windowRound = [this](sim::Tick windowEnd) {
        return [this, windowEnd](std::size_t s) {
            runShardWindow(_shards[s], windowEnd);
        };
    };

    std::vector<FailoverItem> pendingFailover;
    std::size_t arrivalIdx = 0;
    std::size_t crashIdx = 0;
    std::size_t failIdx = 0;
    std::uint64_t seq = 0;
    sim::Tick lastBarrier = 0;
    constexpr sim::Tick kNever = std::numeric_limits<sim::Tick>::max();

    while (true) {
        sim::Tick nextTick = kNever;
        if (arrivalIdx < arrivals.size())
            nextTick = std::min(nextTick, arrivals[arrivalIdx].time);
        if (crashIdx < crashes.size())
            nextTick = std::min(nextTick, crashes[crashIdx].at);
        if (failIdx < pendingFailover.size())
            nextTick =
                std::min(nextTick, pendingFailover[failIdx].deliverAt);
        if (nextTick == kNever)
            break;

        sim::Tick windowStart = nextTick / L * L;
        windowStart = std::min(windowStart, lastBarrier + maxStride);
        const sim::Tick windowEnd = windowStart + L;
        ++result.windows;

        // ---- coordinator phase (single-threaded) --------------------
        refreshBreakers(windowStart);
        // Drain the three input streams due this window in one merged
        // (tick, class) order — crashes outrank failover deliveries,
        // which outrank fresh arrivals at the same instant, matching
        // the legacy serial cluster.
        while (true) {
            const sim::Tick crashAt = crashIdx < crashes.size()
                                          ? crashes[crashIdx].at
                                          : kNever;
            const sim::Tick failAt =
                failIdx < pendingFailover.size()
                    ? pendingFailover[failIdx].deliverAt
                    : kNever;
            const sim::Tick arriveAt = arrivalIdx < arrivals.size()
                                           ? arrivals[arrivalIdx].time
                                           : kNever;
            const sim::Tick due =
                std::min(crashAt, std::min(failAt, arriveAt));
            if (due >= windowEnd)
                break;
            if (crashAt == due) {
                const CrashEvent& ev = crashes[crashIdx++];
                // Routing inside this window must already see the
                // node as gone; the summary refresh at the barrier
                // re-evaluates isDown() for the windows that follow.
                _summaries[ev.node].down = 1;
                _inboxes[ev.node].push_back(
                    {ev.at, seq++, workload::kInvalidFunction,
                     ev.downUntil, ShardInput::kCrash});
            } else if (failAt == due) {
                const FailoverItem& item = pendingFailover[failIdx++];
                const std::size_t target =
                    _scheduler.pick(_summaries, item.function);
                ++result.reroutedInvocations;
                if (_obs != nullptr) {
                    _obs->counters().bump(obs::Counter::FailoverRouted,
                                          item.deliverAt);
                    _obs->emit(item.deliverAt,
                               obs::EventType::FailoverRouted, 0,
                               item.function,
                               static_cast<std::uint8_t>(target),
                               static_cast<std::uint8_t>(item.fromNode));
                }
                _inboxes[target].push_back({item.deliverAt, seq++,
                                            item.function, 0,
                                            ShardInput::kInvoke,
                                            item.originSpan});
            } else {
                const trace::Arrival& arrival = arrivals[arrivalIdx++];
                const std::size_t target =
                    _scheduler.pick(_summaries, arrival.function);
                if (_obs != nullptr) {
                    _obs->emit(arrival.time,
                               obs::EventType::ClusterRouted, 0,
                               arrival.function,
                               static_cast<std::uint8_t>(target));
                }
                _inboxes[target].push_back({arrival.time, seq++,
                                            arrival.function, 0,
                                            ShardInput::kInvoke});
            }
        }

        // ---- parallel phase -----------------------------------------
        executor.runRound(_shards.size(), windowRound(windowEnd));

        // ---- merge phase (single-threaded, sort-once) ---------------
        // Crash log: merged by (tick, node), independent of which
        // shard observed what.
        std::vector<CrashRecord> crashed;
        for (Shard& shard : _shards) {
            crashed.insert(crashed.end(), shard.crashLog.begin(),
                           shard.crashLog.end());
            shard.crashLog.clear();
        }
        std::sort(crashed.begin(), crashed.end(),
                  [](const CrashRecord& a, const CrashRecord& b) {
                      return a.at != b.at ? a.at < b.at
                                          : a.node < b.node;
                  });
        for (const CrashRecord& record : crashed) {
            ++result.nodeCrashes;
            if (_obs != nullptr) {
                _obs->counters().bump(obs::Counter::NodeCrashes,
                                      record.at);
                _obs->emit(record.at, obs::EventType::NodeCrashed, 0, 0,
                           static_cast<std::uint8_t>(record.node), 0,
                           sim::toSeconds(record.downUntil - record.at),
                           static_cast<double>(record.lost));
            }
        }
        // Outboxes: displaced work queues for re-routing, ordered by
        // (crash tick, node, position) — again partition-independent.
        pendingFailover.erase(pendingFailover.begin(),
                              pendingFailover.begin() +
                                  static_cast<std::ptrdiff_t>(failIdx));
        failIdx = 0;
        bool grew = false;
        for (Shard& shard : _shards) {
            if (!shard.outbox.empty()) {
                pendingFailover.insert(pendingFailover.end(),
                                       shard.outbox.begin(),
                                       shard.outbox.end());
                shard.outbox.clear();
                grew = true;
            }
        }
        if (grew) {
            std::sort(pendingFailover.begin(), pendingFailover.end(),
                      [](const FailoverItem& a, const FailoverItem& b) {
                          if (a.deliverAt != b.deliverAt)
                              return a.deliverAt < b.deliverAt;
                          if (a.crashAt != b.crashAt)
                              return a.crashAt < b.crashAt;
                          if (a.fromNode != b.fromNode)
                              return a.fromNode < b.fromNode;
                          return a.index < b.index;
                      });
        }
        lastBarrier = windowEnd;
    }

    // Drain: no cross-shard input remains, so every node can run to
    // completion and flush independently.
    executor.runRound(_shards.size(), [this](std::size_t s) {
        for (const std::size_t index : _shards[s].nodes) {
            _nodes[index]->engine().run();
            _nodes[index]->finalize();
        }
    });

    // Fleet latency sketch, merged in node-index order (see Cluster);
    // the bucket-wise merge is shard-count independent.
    stats::QuantileSketch e2eSketch;
    for (const auto& node : _nodes) {
        const auto& metrics = node->metrics();
        stats::QuantileSketch nodeSketch;
        for (const auto& record : metrics.records())
            nodeSketch.add(sim::toSeconds(record.endToEnd));
        e2eSketch.merge(nodeSketch);
        result.invocations += metrics.total();
        result.coldStarts += metrics.countOf(platform::StartupType::Cold);
        result.totalStartupSeconds += metrics.totalStartupSeconds();
        result.totalWasteMbSeconds +=
            node->pool().wasteLog().totalWasteMbSeconds();
        result.strandedInvocations += node->strandedInvocations();
        result.perNodeInvocations.push_back(metrics.total());
        result.failedInvocations += node->invoker().failedInvocations();
        result.rejectedInvocations +=
            node->invoker().rejectedInvocations();
        result.shedDeadline += node->invoker().shedDeadlineCount();
        result.shedPressure += node->invoker().shedPressureCount();
        result.admittedInvocations +=
            node->invoker().admittedInvocations();
        result.engineEvents += node->engine().executedEvents();
    }
    for (const auto& breaker : _breakers)
        result.breakerOpens += breaker.openCount();
    if (result.invocations > 0) {
        result.meanStartupSeconds = result.totalStartupSeconds /
            static_cast<double>(result.invocations);
    }
    if (e2eSketch.count() > 0) {
        result.e2eP50Seconds = e2eSketch.median();
        result.e2eP99Seconds = e2eSketch.p99();
    }
    // Merge the per-node span buffers into the routing observer. Span
    // identities embed (node, local seq), and absorbSpans sorts on
    // (invocation, id), so the merged dump is byte-identical at any
    // --shards / thread count.
    if (!_nodeObservers.empty()) {
        std::vector<obs::Span> all;
        std::uint64_t dropped = 0;
        for (auto& nodeObs : _nodeObservers) {
            const auto& spans = nodeObs->spans();
            all.insert(all.end(), spans.begin(), spans.end());
            dropped += nodeObs->droppedSpans();
        }
        _obs->absorbSpans(std::move(all), dropped, horizon);
    }
    return result;
}

} // namespace rc::cluster
