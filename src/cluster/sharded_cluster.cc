#include "cluster/sharded_cluster.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "stats/quantile_sketch.hh"

namespace rc::cluster {

namespace {

/** Threads actually worth spawning for @p shards partitions. */
std::size_t
defaultThreads(std::size_t shards)
{
    const std::size_t hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(1, std::min(shards, hw == 0 ? 1 : hw));
}

} // namespace

ShardedCluster::ShardedCluster(const workload::Catalog& catalog,
                               const PolicyFactory& factory,
                               ClusterConfig config, ShardedConfig sharded)
    : _catalog(catalog), _config(config), _sharded(sharded),
      _scheduler(config.scheduling, catalog)
{
    if (config.nodes == 0)
        sim::fatal("ShardedCluster: need at least one node");
    // Same observer rule as the legacy Cluster: one Observer cannot
    // span several engine timelines, so nodes run uninstrumented and
    // the configured observer collects cluster-level events only —
    // emitted exclusively by the single-threaded coordinator. Spans
    // are the exception: each node gets a private span-only Observer
    // (touched only by that node's shard worker), merged after the
    // drain on partition-independent keys.
    _obs = config.node.observer;
    const bool spans = _obs != nullptr && _obs->spansEnabled();
    for (std::size_t i = 0; i < config.nodes; ++i) {
        platform::NodeConfig nodeConfig = config.node;
        nodeConfig.seed = config.node.seed + i; // independent exec draws
        nodeConfig.observer = nullptr;
        if (spans) {
            obs::ObserverConfig spanConfig;
            spanConfig.traceEnabled = false;
            spanConfig.profilingEnabled = false;
            spanConfig.counterInterval = _obs->config().counterInterval;
            spanConfig.spansEnabled = true;
            spanConfig.maxSpans = _obs->config().maxSpans;
            auto nodeObs = std::make_unique<obs::Observer>(spanConfig);
            nodeObs->setSpanNode(static_cast<std::uint16_t>(i));
            nodeConfig.observer = nodeObs.get();
            _nodeObservers.push_back(std::move(nodeObs));
        }
        _nodes.push_back(std::make_unique<platform::Node>(
            _catalog, factory(), nodeConfig));
    }
    const admission::AdmissionPlan& admission = config.node.admission;
    if (admission.breakerFailureThreshold > 0.0) {
        admission::CircuitBreaker::Config breaker;
        breaker.failureThreshold = admission.breakerFailureThreshold;
        breaker.window = sim::fromSeconds(admission.breakerWindowSeconds);
        breaker.cooloff =
            sim::fromSeconds(admission.breakerCooloffSeconds);
        breaker.minSamples = admission.breakerMinSamples;
        _breakers.assign(_nodes.size(),
                         admission::CircuitBreaker(breaker));
    }

    _lookahead = _sharded.lookahead > 0
                     ? _sharded.lookahead
                     : core::CostModel(_sharded.cost).crossShardLookahead();

    // Round-robin node -> shard assignment balances load; the mapping
    // never influences results (see header), only wall-clock.
    const std::size_t shards =
        std::max<std::size_t>(1, std::min(_sharded.shards, _nodes.size()));
    _shards.resize(shards);
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        _shards[i % shards].nodes.push_back(i);
    _threads = _sharded.threads > 0
                   ? std::min(_sharded.threads, shards)
                   : defaultThreads(shards);

    _summaries.resize(_nodes.size());
    _pendingInputs.assign(_nodes.size(), 0);
    _summaryStamps.assign(_nodes.size(), 0);
    _seenFailures.assign(_nodes.size(), 0);
    _seenSuccesses.assign(_nodes.size(), 0);
    _seenTransitions.assign(_nodes.size(), 0);

    // Gray-failure network model + tail-tolerant dispatch. Ticketed
    // dispatch is armed when either the network plan or the domain
    // plan is active (recovery orchestration and retry feedback track
    // requests end-to-end just like hedging does); the net-only
    // machinery — link sampling, hedges, partitions, quarantine —
    // stays gated on the network plan. A zero-knob fault plan builds
    // none of this, draws nothing, and stays bit-identical to an
    // unplanned run.
    if (_config.node.fault.network.active())
        _net = &_config.node.fault.network;
    _ticketed = _net != nullptr || _config.node.fault.domain.active();
    if (_ticketed) {
        // With no network plan the sampler wraps an all-zero plan: it
        // consumes no randomness and delivers everything instantly.
        _netSampler = std::make_unique<fault::NetworkSampler>(
            _config.node.fault.network,
            sim::Rng(_config.node.seed).stream("net"));
        NodeHealthTracker::Config health;
        if (_net != nullptr) {
            health.enabled = _net->quarantineEnabled;
            health.latencyFactor = _net->quarantineLatencyFactor;
            health.minSamples = _net->quarantineMinSamples;
            health.drain =
                sim::fromSeconds(_net->quarantineDrainSeconds);
            health.probeCount = _net->quarantineProbeCount;
            health.readmitFactor = _net->quarantineReadmitFactor;
        }
        _health =
            std::make_unique<NodeHealthTracker>(health, _nodes.size());
        _severed.assign(_nodes.size(), 0);
        _functionSketches.assign(_catalog.size(),
                                 stats::QuantileSketch());
        for (auto& node : _nodes)
            node->enableTicketing();
    }
}

NodeSummary
ShardedCluster::captureSummary(platform::Node& node) const
{
    NodeSummary s;
    s.down = node.isDown() ? 1 : 0;
    s.inFlightPlusQueued = static_cast<std::uint32_t>(
        node.invoker().inFlightInvocations() +
        node.invoker().queuedInvocations());
    s.usedMemoryMb = node.pool().usedMemoryMb();
    s.idleBare = static_cast<std::uint32_t>(node.pool().idleBareCount());
    for (std::size_t l = 0; l < workload::kLanguageCount; ++l) {
        s.idleLang[l] = static_cast<std::uint32_t>(
            node.pool().idleLangCount(static_cast<workload::Language>(l)));
    }
    s.idleUser = static_cast<std::uint32_t>(
        node.pool().idleCountAtLayer(workload::Layer::User, std::nullopt));
    s.failures = node.invoker().failedInvocations();
    s.successes = node.metrics().total();
    return s;
}

void
ShardedCluster::runShardWindow(Shard& shard, sim::Tick windowEnd)
{
    const sim::Tick failoverHop = std::max(
        _lookahead, sim::fromMillis(_sharded.cost.failoverHopMillis));
    // The coordinator appends the bin per stream (failover, arrivals,
    // crashes), so inputs interleave; one sort groups the bin by node
    // and restores the global (tick, kind, seq) drain order within
    // each node — exactly the order the old per-node inbox sort
    // produced (the node major key is determinism-irrelevant: node
    // states are disjoint).
    std::sort(shard.bin.begin(), shard.bin.end(),
              [](const RoutedInput& a, const RoutedInput& b) {
                  if (a.node != b.node)
                      return a.node < b.node;
                  return shardInputBefore(a.input, b.input);
              });
    std::size_t cursor = 0;
    sim::Tick shardNext = std::numeric_limits<sim::Tick>::max();
    for (const std::size_t index : shard.nodes) {
        platform::Node& node = *_nodes[index];
        const std::size_t begin = cursor;
        while (cursor < shard.bin.size() &&
               shard.bin[cursor].node == index)
            ++cursor;
        // Idle fast path: a node with no inputs and no event due
        // before the barrier does nothing this window, so its change
        // stamp cannot have moved (events and coordinator mutations
        // are the only stamp sources, and both come through here) —
        // skip it without even reading the stamp. The check reads
        // only this node's state, so it is independent of the shard
        // partitioning. fullSummaryCapture disables the shortcut so
        // the identity test exercises the full re-walk.
        if (cursor == begin && !_sharded.fullSummaryCapture) {
            const sim::Tick next = node.engine().nextEventAt();
            if (next >= windowEnd) {
                shardNext = std::min(shardNext, next);
                continue;
            }
        }
        {
            for (std::size_t k = begin; k < cursor; ++k) {
                const ShardInput& input = shard.bin[k].input;
                node.advanceTo(input.tick);
                if (input.kind == ShardInput::kCrash) {
                    const auto lost = node.crashNow(input.downUntil);
                    shard.crashLog.push_back(
                        {input.tick, static_cast<std::uint32_t>(index),
                         input.downUntil,
                         static_cast<std::uint32_t>(lost.size())});
                    // Displaced work re-enters at the next barrier,
                    // one failover hop after the crash. The hop is
                    // >= the lookahead by construction, so delivery
                    // never lands inside this window.
                    std::uint32_t i = 0;
                    for (const auto& ticket : lost) {
                        shard.outbox.push_back(
                            {std::max(windowEnd,
                                      input.tick + failoverHop),
                             input.tick,
                             static_cast<std::uint32_t>(index), i++,
                             ticket.function, ticket.originSpan,
                             ticket.ticket});
                    }
                } else if (input.kind == ShardInput::kInvoke) {
                    node.invokeNow(input.function, input.originSpan,
                                   input.ticket);
                } else if (input.kind == ShardInput::kPrewarm) {
                    // Census warm-up: downUntil carries the Layer.
                    node.recoveryPrewarm(
                        input.function,
                        static_cast<workload::Layer>(
                            static_cast<std::uint8_t>(input.downUntil)));
                } else {
                    node.cancelTicket(input.ticket);
                }
            }
            // Windows are half-open: drain everything strictly
            // before the barrier.
            node.advanceTo(windowEnd - 1);
        }
        // Delta capture: publish the summary only when the node's
        // change stamp moved since the last capture. An untouched
        // node's summary is bitwise what the coordinator already
        // holds, so skipping it cannot change results (the
        // fullSummaryCapture identity test pins this).
        const std::uint64_t stamp = node.summaryStamp();
        if (stamp != _summaryStamps[index] ||
            _sharded.fullSummaryCapture) {
            _summaryStamps[index] = stamp;
            shard.summaryScratch.emplace_back(
                static_cast<std::uint32_t>(index), captureSummary(node));
        }
        shardNext = std::min(shardNext, node.engine().nextEventAt());
    }
    shard.bin.clear();
    shard.nextEventAt = shardNext;
}

void
ShardedCluster::refreshBreakers(sim::Tick now)
{
    if (_breakers.empty())
        return;
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        admission::CircuitBreaker& breaker = _breakers[i];
        // Feed outcome deltas from the barrier summaries — the
        // sharded analogue of the legacy per-arrival breaker feed.
        for (; _seenFailures[i] < _summaries[i].failures;
             ++_seenFailures[i])
            breaker.recordFailure(now);
        for (; _seenSuccesses[i] < _summaries[i].successes;
             ++_seenSuccesses[i])
            breaker.recordSuccess(now);
        _summaries[i].tripped = breaker.allows(now) ? 0 : 1;
        const auto& transitions = breaker.transitions();
        for (; _seenTransitions[i] < transitions.size();
             ++_seenTransitions[i]) {
            const auto& tr = transitions[_seenTransitions[i]];
            if (_obs == nullptr)
                continue;
            if (tr.to == admission::CircuitBreaker::State::Open) {
                _obs->counters().bump(obs::Counter::BreakerOpenTotal,
                                      tr.at);
            }
            _obs->emit(tr.at, obs::EventType::BreakerStateChanged, 0,
                       0xffffffffU, static_cast<std::uint8_t>(tr.to),
                       static_cast<std::uint8_t>(tr.from),
                       static_cast<double>(i));
        }
    }
}

ClusterResult
ShardedCluster::run(const std::vector<trace::Arrival>& arrivals)
{
    trace::VectorArrivalSource source(arrivals);
    return run(source);
}

ClusterResult
ShardedCluster::run(trace::ArrivalSource& source)
{
    ClusterResult result;
    result.schedulingName = toString(_config.scheduling);

    const sim::Tick horizon = source.horizon();

    for (auto& node : _nodes)
        node->armAdmission(horizon);
    const fault::FaultPlan& plan = _config.node.fault;
    if (plan.active()) {
        for (auto& node : _nodes)
            node->armFaults(horizon, /*manageNodeCrashes=*/false);
    }
    std::vector<CrashEvent> crashes = drawCrashSchedule(
        plan, _config.node.seed, _nodes.size(), horizon);
    if (plan.domain.active()) {
        _recovery = std::make_unique<RecoveryOrchestrator>(
            plan.domain, _catalog, _config.node.seed, _nodes.size(),
            horizon, _obs);
        // Correlated-outage crashes ride the same pre-drawn crash
        // stream as independent MTBF crashes; one merge restores the
        // (at, node) order both sources already obey.
        const auto& outageCrashes = _recovery->outageCrashes();
        if (!outageCrashes.empty()) {
            // The recovery-window latency sketch starts collecting at
            // the first correlated strike (the stream is (at, node)
            // sorted, so front() is earliest).
            _recoveryFrom = outageCrashes.front().at;
            crashes.insert(crashes.end(), outageCrashes.begin(),
                           outageCrashes.end());
            std::stable_sort(crashes.begin(), crashes.end(),
                             [](const CrashEvent& a,
                                const CrashEvent& b) {
                                 return a.at != b.at ? a.at < b.at
                                                     : a.node < b.node;
                             });
        }
    }
    if (_net != nullptr) {
        _degradedSchedule = fault::drawDegradedWindows(
            *_net, _config.node.seed, _nodes.size(), horizon);
        _partitions = fault::drawPartitionSchedule(
            *_net, _config.node.seed, _nodes.size(), horizon);
        std::vector<std::vector<platform::DegradedSpan>> perNode(
            _nodes.size());
        for (const auto& w : _degradedSchedule) {
            perNode[w.node].push_back(
                {w.start, w.end, w.execFactor, w.initFactor});
        }
        for (std::size_t i = 0; i < _nodes.size(); ++i) {
            if (!perNode[i].empty())
                _nodes[i]->setDegradedWindows(std::move(perNode[i]));
        }
    }

    const sim::Tick L = _lookahead;
    // Staleness cap, rounded up to whole windows so every barrier
    // stays on the lookahead grid.
    const sim::Tick maxStride =
        std::max(L, (_sharded.maxSummaryStaleness + L - 1) / L * L);

    constexpr sim::Tick kNever = std::numeric_limits<sim::Tick>::max();
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        _summaries[i] = captureSummary(*_nodes[i]);
        _summaryStamps[i] = _nodes[i]->summaryStamp();
    }
    for (Shard& shard : _shards) {
        shard.nextEventAt = kNever;
        for (const std::size_t i : shard.nodes) {
            shard.nextEventAt = std::min(
                shard.nextEventAt, _nodes[i]->engine().nextEventAt());
        }
    }

    sim::ShardExecutor executor(_threads);
    // One round closure reused by every window (no per-window
    // std::function allocation); the coordinator updates
    // roundWindowEnd and _activeShards between rounds.
    sim::Tick roundWindowEnd = 0;
    const sim::ShardExecutor::RoundFn shardRound =
        [this, &roundWindowEnd](std::size_t i) {
            runShardWindow(_shards[_activeShards[i]], roundWindowEnd);
        };

    // Coordinator-phase wall-clock breakdown. Gated: the numbers are
    // nondeterministic and the clock reads are not free, so only
    // bench/instrumented runs pay for them.
    const bool timing = _sharded.phaseTimings;
    const auto nowNs = [] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    };
    std::uint64_t coordNs = 0;
    std::uint64_t routedNs = 0;
    std::uint64_t summaryNs = 0;
    std::uint64_t parallelNs = 0;

    std::vector<FailoverItem> pendingFailover;
    std::vector<CrashRecord> crashed; // merge scratch, reused per window
    std::size_t crashIdx = 0;
    std::size_t failIdx = 0;
    std::uint64_t seq = 0;
    sim::Tick lastBarrier = 0;

    while (true) {
        const std::uint64_t tWindow = timing ? nowNs() : 0;
        sim::Tick nextTick = kNever;
        if (!source.done())
            nextTick = std::min(nextTick, source.peek().time);
        if (crashIdx < crashes.size())
            nextTick = std::min(nextTick, crashes[crashIdx].at);
        if (failIdx < pendingFailover.size())
            nextTick =
                std::min(nextTick, pendingFailover[failIdx].deliverAt);
        if (_deliveryIdx < _pendingDeliveries.size()) {
            nextTick = std::min(
                nextTick, _pendingDeliveries[_deliveryIdx].deliverAt);
        }
        if (ticketing()) {
            // Partition flips and outstanding ticket watches (hedge
            // deadlines, pending cancels) keep the barrier grid
            // stepping even with no routable input left.
            if (_partitionIdx < _partitions.size())
                nextTick =
                    std::min(nextTick, _partitions[_partitionIdx].start);
            for (const std::size_t pi : _activePartitions) {
                // A partition lifts at the first barrier at or after
                // its end (applyPartitions tests end <= windowStart),
                // so propose that grid point — proposing the raw end
                // tick would floor back into a window that can never
                // clear it.
                const sim::Tick end = _partitions[pi].end;
                nextTick = std::min(nextTick, alignToBarrier(end, L));
            }
            if (!_watches.empty()) {
                // Wake at the next instant the coordinator can act on
                // a watch: a queued cancel input (pushed at the last
                // barrier), the next node event (the earliest a new
                // ticket outcome can surface), or the earliest hedge
                // deadline. All three read per-node / coordinator
                // state only, so the barrier schedule — and with it
                // hedge timing — is identical at any shard count.
                for (std::size_t i = 0; i < _nodes.size(); ++i) {
                    nextTick = std::min(
                        nextTick, _pendingInputs[i] == 0
                                      ? _nodes[i]->engine().nextEventAt()
                                      : lastBarrier);
                }
                if (_net != nullptr && _net->hedgeEnabled) {
                    for (const auto& [ticket, watch] : _watches) {
                        if (watch.resolved || watch.hedgeTicket != 0 ||
                            watch.isProbe || watch.primaryDone)
                            continue;
                        const auto& sketch =
                            _functionSketches[watch.function];
                        if (sketch.count() < _net->hedgeMinSamples)
                            continue;
                        const double budget = std::max(
                            sketch.p99() * _net->hedgeLatencyFactor,
                            _net->hedgeMinBudgetMs / 1000.0);
                        nextTick = std::min(
                            nextTick,
                            std::max(watch.sentAt +
                                         sim::fromSeconds(budget),
                                     lastBarrier));
                    }
                }
            }
        }
        if (_recovery != nullptr) {
            // Recovery deadlines gate on windowStart >= deadline, so
            // propose the grid point at-or-after them — the raw tick
            // would floor back into a window that can never clear it
            // (the same trap as partition ends above).
            const sim::Tick recoveryAt = _recovery->nextActionAt();
            if (recoveryAt != kNever)
                nextTick =
                    std::min(nextTick, alignToBarrier(recoveryAt, L));
            if (_recovery->needsNodeProgress()) {
                // Draining and warming complete through node-local
                // events (executions finishing, prewarm inits); keep
                // barriers stepping with them so the FSM observes
                // progress promptly.
                for (std::size_t i = 0; i < _nodes.size(); ++i) {
                    nextTick = std::min(
                        nextTick, _pendingInputs[i] == 0
                                      ? _nodes[i]->engine().nextEventAt()
                                      : lastBarrier);
                }
            }
        }
        if (_feedbackIdx < _feedbackQueue.size())
            nextTick =
                std::min(nextTick, _feedbackQueue[_feedbackIdx].at);
        if (nextTick == kNever)
            break;

        sim::Tick windowStart = nextTick / L * L;
        windowStart = std::min(windowStart, lastBarrier + maxStride);
        const sim::Tick windowEnd = windowStart + L;
        ++result.windows;

        // ---- coordinator phase (single-threaded) --------------------
        refreshBreakers(windowStart);
        if (ticketing()) {
            applyPartitions(windowStart, windowEnd, result);
            emitDegradedEvents(windowEnd);
            _health->refresh(windowStart);
            emitHealthTransitions();
        }
        // Recovery FSM runs before routing (hedges, retries, arrivals)
        // so every dispatch this window sees the recovering flags; it
        // runs before the crash drain so census snapshots still read
        // pre-failure summaries.
        if (_recovery != nullptr)
            applyRecovery(windowStart, windowEnd, seq);
        if (_net != nullptr)
            launchHedges(windowStart, windowEnd, seq, result);
        drainFeedbackRetries(windowEnd, seq, result);
        const std::uint64_t tRoute = timing ? nowNs() : 0;
        // Drain the three input streams due this window in one merged
        // (tick, class) order — crashes outrank failover deliveries,
        // which outrank fresh arrivals at the same instant, matching
        // the legacy serial cluster.
        while (true) {
            const sim::Tick crashAt = crashIdx < crashes.size()
                                          ? crashes[crashIdx].at
                                          : kNever;
            const sim::Tick failAt =
                failIdx < pendingFailover.size()
                    ? pendingFailover[failIdx].deliverAt
                    : kNever;
            const sim::Tick deliverAt =
                _deliveryIdx < _pendingDeliveries.size()
                    ? _pendingDeliveries[_deliveryIdx].deliverAt
                    : kNever;
            const sim::Tick arriveAt =
                !source.done() ? source.peek().time : kNever;
            const sim::Tick due = std::min(
                std::min(crashAt, deliverAt), std::min(failAt, arriveAt));
            if (due >= windowEnd)
                break;
            if (crashAt == due) {
                const CrashEvent& ev = crashes[crashIdx++];
                // Routing inside this window must already see the
                // node as gone; the summary refresh at the barrier
                // re-evaluates isDown() for the windows that follow.
                _summaries[ev.node].down = 1;
                queueInput(ev.node,
                           {ev.at, seq++, workload::kInvalidFunction,
                            ev.downUntil, ShardInput::kCrash});
            } else if (failAt == due) {
                const FailoverItem& item = pendingFailover[failIdx++];
                const std::size_t target =
                    _scheduler.pick(_summaries, item.function);
                ++result.reroutedInvocations;
                if (_obs != nullptr) {
                    _obs->counters().bump(obs::Counter::FailoverRouted,
                                          item.deliverAt);
                    _obs->emit(item.deliverAt,
                               obs::EventType::FailoverRouted, 0,
                               item.function,
                               static_cast<std::uint8_t>(target),
                               static_cast<std::uint8_t>(item.fromNode));
                }
                if (item.ticket != 0) {
                    // The re-issued attempt keeps its ticket; the
                    // watch follows it to the new node.
                    const auto it = _ticketToPrimary.find(item.ticket);
                    if (it != _ticketToPrimary.end()) {
                        Watch& watch = _watches.at(it->second);
                        if (item.ticket == watch.hedgeTicket) {
                            watch.hedgeNode =
                                static_cast<std::uint32_t>(target);
                        } else {
                            watch.primaryNode =
                                static_cast<std::uint32_t>(target);
                        }
                    }
                }
                queueInput(target, {item.deliverAt, seq++,
                                    item.function, 0,
                                    ShardInput::kInvoke,
                                    item.originSpan, item.ticket});
            } else if (deliverAt == due) {
                const Delivery& d = _pendingDeliveries[_deliveryIdx++];
                queueInput(d.node, {d.deliverAt, seq++, d.function, 0,
                                    ShardInput::kInvoke, d.originSpan,
                                    d.ticket});
            } else {
                const trace::Arrival arrival = source.peek();
                source.pop();
                ++_offeredLoad;
                std::size_t target = 0;
                bool probe = false;
                if (ticketing()) {
                    // Probation trickle: the lowest-index reachable
                    // node waiting on a readmission probe takes this
                    // arrival instead of the normal pick.
                    for (std::size_t i = 0; i < _nodes.size(); ++i) {
                        if (_health->wantsProbe(i) &&
                            _summaries[i].down == 0 &&
                            _summaries[i].tripped == 0 &&
                            _summaries[i].severed == 0) {
                            target = i;
                            probe = true;
                            break;
                        }
                    }
                }
                if (!probe)
                    target = _scheduler.pick(_summaries, arrival.function);
                if (_obs != nullptr) {
                    _obs->emit(arrival.time,
                               obs::EventType::ClusterRouted, 0,
                               arrival.function,
                               static_cast<std::uint8_t>(target));
                }
                if (!ticketing()) {
                    queueInput(target, {arrival.time, seq++,
                                        arrival.function, 0,
                                        ShardInput::kInvoke});
                    continue;
                }
                if (probe) {
                    _health->noteProbeSent(target);
                    if (_obs != nullptr) {
                        _obs->counters().bump(obs::Counter::NodeProbes,
                                              arrival.time);
                        _obs->emit(arrival.time,
                                   obs::EventType::NodeProbed, 0,
                                   arrival.function,
                                   static_cast<std::uint8_t>(target));
                    }
                } else if (_health->quarantined(target)) {
                    // The scheduler only lands on a quarantined node
                    // when nothing else is available; with a healthy
                    // alternative up this counts as a violation
                    // (chaos_check --gray pins it at zero).
                    for (std::size_t i = 0; i < _nodes.size(); ++i) {
                        if (_summaries[i].down == 0 &&
                            _summaries[i].tripped == 0 &&
                            _summaries[i].severed == 0 &&
                            _summaries[i].quarantined == 0) {
                            ++_quarantineViolations;
                            break;
                        }
                    }
                }
                const std::uint64_t ticket = _nextTicket++;
                Watch watch;
                watch.function = arrival.function;
                watch.arrival = arrival.time;
                watch.sentAt = arrival.time;
                watch.primaryTicket = ticket;
                watch.primaryNode = static_cast<std::uint32_t>(target);
                watch.isProbe = probe;
                _watches.emplace(ticket, watch);
                _ticketToPrimary.emplace(ticket, ticket);
                if (probe) {
                    _probeTickets.emplace(
                        ticket, static_cast<std::uint32_t>(target));
                }
                sendInvoke(target, arrival.function, 0, ticket,
                           arrival.time, windowEnd, seq);
            }
        }
        if (ticketing() && _deliveryIdx < _pendingDeliveries.size()) {
            // New sends may have parked out-of-order relative to the
            // undelivered backlog; one sort restores (deliverAt,
            // sendSeq) before the next window reads the front.
            std::sort(_pendingDeliveries.begin() +
                          static_cast<std::ptrdiff_t>(_deliveryIdx),
                      _pendingDeliveries.end(),
                      [](const Delivery& a, const Delivery& b) {
                          if (a.deliverAt != b.deliverAt)
                              return a.deliverAt < b.deliverAt;
                          return a.sendSeq < b.sendSeq;
                      });
        }

        // ---- pre-binning: one batch pass routes the whole window ----
        // Appending into per-shard bins here (capacity reserved from
        // the previous window's high-water mark) replaces the old
        // per-arrival push into N node inboxes; the worker regroups
        // its bin by node with a single sort.
        const std::size_t shardCount = _shards.size();
        if (!_routeScratch.empty()) {
            for (Shard& shard : _shards)
                shard.bin.reserve(shard.binHighWater);
            for (const RoutedInput& r : _routeScratch) {
                _shards[r.node % shardCount].bin.push_back(r);
                _pendingInputs[r.node] = 0;
            }
            for (Shard& shard : _shards) {
                shard.binHighWater =
                    std::max(shard.binHighWater, shard.bin.size());
            }
            _routeScratch.clear();
        }
        // Shards with no input and no due node events would only run
        // every node's idle fast path; skip them wholesale. The test
        // knob forces full participation so identity tests exercise
        // the no-skip path.
        _activeShards.clear();
        for (std::size_t s = 0; s < shardCount; ++s) {
            if (_sharded.fullSummaryCapture || !_shards[s].bin.empty() ||
                _shards[s].nextEventAt < windowEnd)
                _activeShards.push_back(s);
        }
        if (timing)
            routedNs += nowNs() - tRoute;

        // ---- parallel phase -----------------------------------------
        roundWindowEnd = windowEnd;
        const std::uint64_t tParallel = timing ? nowNs() : 0;
        if (timing)
            coordNs += tParallel - tWindow;
        if (!_activeShards.empty())
            executor.runRound(_activeShards.size(), shardRound);
        const std::uint64_t tMerge = timing ? nowNs() : 0;
        if (timing)
            parallelNs += tMerge - tParallel;

        // ---- merge phase (single-threaded, sort-once) ---------------
        // Summary deltas: patch the coordinator's table in place from
        // the entries the workers flagged dirty, preserving the
        // coordinator-owned flags (tripped, severed, quarantined) that
        // nodes never track — refreshBreakers, applyPartitions, and
        // emitHealthTransitions keep those current themselves.
        for (Shard& shard : _shards) {
            for (const auto& [index, fresh] : shard.summaryScratch) {
                NodeSummary& slot = _summaries[index];
                const std::uint8_t tripped = slot.tripped;
                const std::uint8_t severed = slot.severed;
                const std::uint8_t quarantined = slot.quarantined;
                slot = fresh;
                slot.tripped = tripped;
                slot.severed = severed;
                slot.quarantined = quarantined;
            }
            shard.summaryScratch.clear();
        }
        if (timing)
            summaryNs += nowNs() - tMerge;

        // Crash log: merged by (tick, node), independent of which
        // shard observed what.
        crashed.clear();
        for (Shard& shard : _shards) {
            crashed.insert(crashed.end(), shard.crashLog.begin(),
                           shard.crashLog.end());
            shard.crashLog.clear();
        }
        std::sort(crashed.begin(), crashed.end(),
                  [](const CrashRecord& a, const CrashRecord& b) {
                      return a.at != b.at ? a.at < b.at
                                          : a.node < b.node;
                  });
        for (const CrashRecord& record : crashed) {
            ++result.nodeCrashes;
            if (_obs != nullptr) {
                _obs->counters().bump(obs::Counter::NodeCrashes,
                                      record.at);
                _obs->emit(record.at, obs::EventType::NodeCrashed, 0, 0,
                           static_cast<std::uint8_t>(record.node), 0,
                           sim::toSeconds(record.downUntil - record.at),
                           static_cast<double>(record.lost));
            }
        }
        // Outboxes: displaced work queues for re-routing, ordered by
        // (crash tick, node, position) — again partition-independent.
        pendingFailover.erase(pendingFailover.begin(),
                              pendingFailover.begin() +
                                  static_cast<std::ptrdiff_t>(failIdx));
        failIdx = 0;
        bool grew = false;
        for (Shard& shard : _shards) {
            if (!shard.outbox.empty()) {
                pendingFailover.insert(pendingFailover.end(),
                                       shard.outbox.begin(),
                                       shard.outbox.end());
                shard.outbox.clear();
                grew = true;
            }
        }
        if (grew) {
            std::sort(pendingFailover.begin(), pendingFailover.end(),
                      [](const FailoverItem& a, const FailoverItem& b) {
                          if (a.deliverAt != b.deliverAt)
                              return a.deliverAt < b.deliverAt;
                          if (a.crashAt != b.crashAt)
                              return a.crashAt < b.crashAt;
                          if (a.fromNode != b.fromNode)
                              return a.fromNode < b.fromNode;
                          return a.index < b.index;
                      });
        }
        if (ticketing()) {
            _pendingDeliveries.erase(
                _pendingDeliveries.begin(),
                _pendingDeliveries.begin() +
                    static_cast<std::ptrdiff_t>(_deliveryIdx));
            _deliveryIdx = 0;
            processOutcomes(windowEnd, seq, result);
        }
        lastBarrier = windowEnd;
        if (timing)
            coordNs += nowNs() - tMerge;
    }

    // Drain: no cross-shard input remains, so every node can run to
    // completion and flush independently.
    const std::uint64_t tDrain = timing ? nowNs() : 0;
    executor.runRound(_shards.size(), [this](std::size_t s) {
        for (const std::size_t index : _shards[s].nodes) {
            _nodes[index]->engine().run();
            _nodes[index]->finalize();
        }
    });
    if (timing)
        parallelNs += nowNs() - tDrain;

    if (ticketing()) {
        // The drain turned every live ticket terminal (completed,
        // failed, or stranded-shed); one final sweep settles the
        // remaining hedge pairs. Cancels it would issue have no
        // window left to run in — their losers are already terminal
        // in this same batch — so drop the dead inbox inputs.
        processOutcomes(lastBarrier, seq, result);
        _routeScratch.clear();
        std::fill(_pendingInputs.begin(), _pendingInputs.end(), 0);
        emitDegradedEvents(std::numeric_limits<sim::Tick>::max());
        emitHealthTransitions();
    }
    if (_recovery != nullptr) {
        // Close every in-flight episode so the recovery conservation
        // identities hold however the horizon cut the schedule.
        _recovery->finishPending(lastBarrier);
        _recovery->report(result);
        result.retriesFeedback = _retriesFeedback;
        for (const auto& node : _nodes) {
            result.prewarmLayers += node->recoveryPrewarmsIssued();
            result.prewarmHit += node->pool().recoveryPrewarmHits();
            result.prewarmEvicted +=
                node->pool().recoveryPrewarmEvicted();
            result.prewarmWasted += node->pool().recoveryPrewarmWasted();
            result.prewarmWastedMb +=
                node->pool().recoveryPrewarmWastedMb();
        }
    }

    // Fleet latency sketch, merged in node-index order (see Cluster);
    // the bucket-wise merge is shard-count independent.
    stats::QuantileSketch e2eSketch;
    for (const auto& node : _nodes) {
        const auto& metrics = node->metrics();
        stats::QuantileSketch nodeSketch;
        for (const auto& record : metrics.records())
            nodeSketch.add(sim::toSeconds(record.endToEnd));
        e2eSketch.merge(nodeSketch);
        result.invocations += metrics.total();
        result.coldStarts += metrics.countOf(platform::StartupType::Cold);
        result.totalStartupSeconds += metrics.totalStartupSeconds();
        result.totalWasteMbSeconds +=
            node->pool().wasteLog().totalWasteMbSeconds();
        result.strandedInvocations += node->strandedInvocations();
        result.perNodeInvocations.push_back(metrics.total());
        result.failedInvocations += node->invoker().failedInvocations();
        result.rejectedInvocations +=
            node->invoker().rejectedInvocations();
        result.shedDeadline += node->invoker().shedDeadlineCount();
        result.shedPressure += node->invoker().shedPressureCount();
        result.admittedInvocations +=
            node->invoker().admittedInvocations();
        result.engineEvents += node->engine().executedEvents();
        result.cancelledInvocations += node->cancelledInvocations();
    }
    for (const auto& breaker : _breakers)
        result.breakerOpens += breaker.openCount();
    if (result.invocations > 0) {
        result.meanStartupSeconds = result.totalStartupSeconds /
            static_cast<double>(result.invocations);
    }
    if (e2eSketch.count() > 0) {
        result.e2eP50Seconds = e2eSketch.median();
        result.e2eP99Seconds = e2eSketch.p99();
    }
    if (ticketing()) {
        // Under hedging the node-level sketch double-counts duplicate
        // attempts; the request-level sketch (winner per ticket) is
        // the meaningful latency distribution, so it supplies the
        // percentiles instead.
        if (_requestSketch.count() > 0) {
            result.e2eP50Seconds = _requestSketch.median();
            result.e2eP99Seconds = _requestSketch.p99();
            result.e2eP999Seconds = _requestSketch.quantile(0.999);
        }
        if (_recoverySketch.count() > 0) {
            result.recoveryP99Seconds = _recoverySketch.p99();
            result.recoveryP999Seconds = _recoverySketch.quantile(0.999);
        }
        if (_health != nullptr) {
            result.quarantines = _health->quarantines();
            result.probes = _health->probes();
            result.readmits = _health->readmits();
        }
        result.msgsDelayed = _msgsDelayed;
        result.msgsDropped = _msgsDropped;
        result.quarantineViolations = _quarantineViolations;
    }
    // Merge the per-node span buffers into the routing observer. Span
    // identities embed (node, local seq), and absorbSpans sorts on
    // (invocation, id), so the merged dump is byte-identical at any
    // --shards / thread count.
    if (!_nodeObservers.empty()) {
        std::vector<obs::Span> all;
        std::uint64_t dropped = 0;
        for (auto& nodeObs : _nodeObservers) {
            const auto& spans = nodeObs->spans();
            all.insert(all.end(), spans.begin(), spans.end());
            dropped += nodeObs->droppedSpans();
        }
        _obs->absorbSpans(std::move(all), dropped, horizon);
    }
    if (timing) {
        result.coordinatorDrainNs = coordNs;
        result.routeNs = routedNs;
        result.summaryCaptureNs = summaryNs;
        result.parallelNs = parallelNs;
        if (coordNs + parallelNs > 0) {
            result.serialFraction =
                static_cast<double>(coordNs) /
                static_cast<double>(coordNs + parallelNs);
        }
        if (_obs != nullptr) {
            obs::Registry& counters = _obs->counters();
            counters.gaugeMax(obs::Gauge::CoordinatorDrainNs,
                              static_cast<double>(coordNs));
            counters.gaugeMax(obs::Gauge::RouteNs,
                              static_cast<double>(routedNs));
            counters.gaugeMax(obs::Gauge::SummaryCaptureNs,
                              static_cast<double>(summaryNs));
        }
    }
    return result;
}

// ---- gray network / tail tolerance (coordinator only) ------------------

void
ShardedCluster::sendInvoke(std::size_t node, workload::FunctionId function,
                           std::uint64_t originSpan, std::uint64_t ticket,
                           sim::Tick sendAt, sim::Tick windowEnd,
                           std::uint64_t& seq)
{
    const fault::NetworkSampler::Delivery link = _netSampler->sample();
    if (link.delay > 0) {
        ++_msgsDelayed;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::MsgsDelayed, sendAt);
            _obs->emit(sendAt, obs::EventType::MsgDelayed, 0, function,
                       static_cast<std::uint8_t>(node), 0,
                       sim::toSeconds(link.delay));
        }
    }
    if (link.drops > 0) {
        _msgsDropped += link.drops;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::MsgsDropped, sendAt,
                                  link.drops);
            _obs->emit(sendAt, obs::EventType::MsgDropped, 0, function,
                       static_cast<std::uint8_t>(node),
                       static_cast<std::uint8_t>(
                           std::min<std::uint32_t>(link.drops, 255)),
                       sim::toSeconds(link.delay));
        }
    }
    const sim::Tick deliverAt = sendAt + link.delay;
    if (deliverAt < windowEnd) {
        queueInput(node, {deliverAt, seq++, function, 0,
                          ShardInput::kInvoke, originSpan, ticket});
    } else {
        // Crosses the barrier: park it; the main loop's nextTick scan
        // and the per-window drain pick it up in (deliverAt, sendSeq)
        // order.
        _pendingDeliveries.push_back(
            {deliverAt, seq++, static_cast<std::uint32_t>(node), function,
             originSpan, ticket});
    }
}

void
ShardedCluster::applyPartitions(sim::Tick windowStart, sim::Tick windowEnd,
                                ClusterResult& result)
{
    for (auto it = _activePartitions.begin();
         it != _activePartitions.end();) {
        const fault::PartitionEvent& ev = _partitions[*it];
        if (ev.end <= windowStart) {
            for (const std::uint32_t n : ev.nodes) {
                _severed[n] = 0;
                _summaries[n].severed = 0;
            }
            if (_obs != nullptr) {
                _obs->emit(ev.end, obs::EventType::PartitionEnd, 0,
                           0xffffffffU,
                           static_cast<std::uint8_t>(ev.nodes.size()));
            }
            it = _activePartitions.erase(it);
        } else {
            ++it;
        }
    }
    while (_partitionIdx < _partitions.size() &&
           _partitions[_partitionIdx].start < windowEnd) {
        const fault::PartitionEvent& ev = _partitions[_partitionIdx];
        for (const std::uint32_t n : ev.nodes) {
            _severed[n] = 1;
            _summaries[n].severed = 1;
        }
        ++result.partitions;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::PartitionsStarted,
                                  ev.start);
            _obs->emit(ev.start, obs::EventType::PartitionStart, 0,
                       0xffffffffU,
                       static_cast<std::uint8_t>(ev.nodes.size()), 0,
                       sim::toSeconds(ev.end - ev.start));
        }
        _activePartitions.push_back(_partitionIdx);
        ++_partitionIdx;
    }
}

void
ShardedCluster::emitDegradedEvents(sim::Tick end)
{
    while (_degradedEmitted < _degradedSchedule.size() &&
           _degradedSchedule[_degradedEmitted].start < end) {
        const fault::DegradedWindow& w =
            _degradedSchedule[_degradedEmitted++];
        if (_obs != nullptr) {
            _obs->emit(w.start, obs::EventType::NodeDegraded, 0,
                       0xffffffffU, static_cast<std::uint8_t>(w.node), 0,
                       sim::toSeconds(w.end - w.start), w.execFactor);
        }
    }
}

void
ShardedCluster::emitHealthTransitions()
{
    if (_health == nullptr)
        return;
    for (const NodeHealthTracker::Transition& tr :
         _health->drainTransitions()) {
        // The summary table tracks quarantine by transition delta:
        // workers never see the flag, and the delta merge preserves
        // it, so patching here (every state change logs a transition)
        // replaces the old full-fleet re-sync each window.
        _summaries[tr.node].quarantined =
            tr.to != NodeHealthTracker::State::Healthy ? 1 : 0;
        if (_obs == nullptr)
            continue;
        using State = NodeHealthTracker::State;
        if (tr.to == State::Quarantined) {
            _obs->counters().bump(obs::Counter::NodeQuarantines, tr.at);
            _obs->emit(tr.at, obs::EventType::NodeQuarantined, 0,
                       0xffffffffU, static_cast<std::uint8_t>(tr.node),
                       static_cast<std::uint8_t>(tr.from),
                       static_cast<double>(tr.node),
                       _health->ewma(tr.node));
        } else if (tr.to == State::Healthy) {
            _obs->counters().bump(obs::Counter::NodeReadmits, tr.at);
            _obs->emit(tr.at, obs::EventType::NodeReadmitted, 0,
                       0xffffffffU, static_cast<std::uint8_t>(tr.node), 0,
                       static_cast<double>(tr.node));
        }
        // Quarantined -> Probation flips silently; the NodeProbed
        // events that follow tell the story.
    }
}

void
ShardedCluster::launchHedges(sim::Tick now, sim::Tick windowEnd,
                             std::uint64_t& seq, ClusterResult& result)
{
    if (!_net->hedgeEnabled)
        return;
    // _watches is ordered by primary ticket = issue order, so the scan
    // order (and thus the sampler draw order in sendInvoke) is a pure
    // function of coordinator state.
    for (auto& [primaryTicket, watch] : _watches) {
        if (watch.resolved || watch.hedgeTicket != 0 || watch.isProbe ||
            watch.primaryDone)
            continue;
        const stats::QuantileSketch& sketch =
            _functionSketches[watch.function];
        if (sketch.count() < _net->hedgeMinSamples)
            continue;
        const double budgetSeconds =
            std::max(sketch.p99() * _net->hedgeLatencyFactor,
                     _net->hedgeMinBudgetMs / 1000.0);
        if (now < watch.sentAt + sim::fromSeconds(budgetSeconds))
            continue;
        const std::size_t target = _scheduler.pickAvoiding(
            _summaries, watch.function, watch.primaryNode);
        // pickAvoiding falls back to the primary when nothing else is
        // reachable; hedging onto the same node (or a straggler) is
        // worse than waiting, so skip and re-try next barrier.
        if (target == watch.primaryNode || _health->quarantined(target))
            continue;
        watch.hedgeTicket = _nextTicket++;
        watch.hedgeNode = static_cast<std::uint32_t>(target);
        _ticketToPrimary.emplace(watch.hedgeTicket, primaryTicket);
        ++result.hedgesLaunched;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::HedgesLaunched, now);
            _obs->emit(now, obs::EventType::HedgeLaunched,
                       watch.primaryRoot, watch.function,
                       static_cast<std::uint8_t>(target),
                       static_cast<std::uint8_t>(watch.primaryNode),
                       sim::toSeconds(now - watch.sentAt));
        }
        sendInvoke(target, watch.function, watch.primaryRoot,
                   watch.hedgeTicket, now, windowEnd, seq);
    }
}

void
ShardedCluster::noteSideDone(Watch& watch, bool hedgeSide,
                             ClusterResult& result, sim::Tick at)
{
    if (hedgeSide) {
        if (watch.hedgeDone)
            return;
        watch.hedgeDone = true;
        // A hedge that turned terminal without winning is a lost
        // hedge: the speculation bought nothing.
        ++result.hedgesLost;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::HedgesLost, at);
            _obs->emit(at, obs::EventType::HedgeLost, watch.primaryRoot,
                       watch.function,
                       static_cast<std::uint8_t>(watch.hedgeNode));
        }
    } else {
        watch.primaryDone = true;
    }
}

void
ShardedCluster::eraseWatchIfComplete(std::uint64_t primaryTicket)
{
    const auto it = _watches.find(primaryTicket);
    if (it == _watches.end())
        return;
    const Watch& watch = it->second;
    const bool hedgeDone =
        watch.hedgeTicket == 0 || watch.hedgeDone;
    if (!watch.primaryDone || !hedgeDone)
        return;
    _ticketToPrimary.erase(watch.primaryTicket);
    if (watch.hedgeTicket != 0)
        _ticketToPrimary.erase(watch.hedgeTicket);
    _probeTickets.erase(watch.primaryTicket);
    _watches.erase(it);
}

void
ShardedCluster::processOutcomes(sim::Tick barrier, std::uint64_t& seq,
                                ClusterResult& result)
{
    // Drain per node in node-index order, then impose the global
    // (at, ticket, kind) order — both independent of the sharding.
    // The batch lives in a member scratch vector so its capacity is
    // reused across windows.
    std::vector<TaggedOutcome>& batch = _outcomeScratch;
    batch.clear();
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        for (const platform::TicketOutcome& outcome :
             _nodes[i]->drainTicketOutcomes())
            batch.push_back({outcome, static_cast<std::uint32_t>(i)});
    }
    if (batch.empty())
        return;
    std::sort(batch.begin(), batch.end(),
              [](const TaggedOutcome& a, const TaggedOutcome& b) {
                  if (a.outcome.at != b.outcome.at)
                      return a.outcome.at < b.outcome.at;
                  if (a.outcome.ticket != b.outcome.ticket)
                      return a.outcome.ticket < b.outcome.ticket;
                  return a.outcome.kind < b.outcome.kind;
              });

    // Issue a loser cancel for the next window. The loser may live on
    // any node, so the cancel routes like any other cross-shard input.
    const auto issueCancel = [this, barrier, &seq](std::uint32_t node,
                                                   std::uint64_t ticket) {
        queueInput(node, {barrier, seq++, workload::kInvalidFunction, 0,
                          ShardInput::kCancel, 0, ticket});
    };

    for (const TaggedOutcome& tagged : batch) {
        const platform::TicketOutcome& o = tagged.outcome;
        const auto pit = _ticketToPrimary.find(o.ticket);

        if (o.kind == platform::TicketOutcome::kAdmitted) {
            if (pit == _ticketToPrimary.end())
                continue;
            Watch& watch = _watches.at(pit->second);
            const bool hedgeSide = o.ticket == watch.hedgeTicket;
            if (hedgeSide) {
                watch.hedgeAdmitted = true;
            } else {
                watch.primaryAdmitted = true;
                if (watch.primaryRoot == 0)
                    watch.primaryRoot = o.rootSpan;
            }
            // The winner committed while this loser was still in
            // flight: the deferred cancel lands now that the node
            // holds the ticket.
            const bool sideDone =
                hedgeSide ? watch.hedgeDone : watch.primaryDone;
            if (watch.resolved && !sideDone) {
                issueCancel(tagged.node, o.ticket);
                watch.cancelIssued = true;
            }
            continue;
        }

        if (o.kind == platform::TicketOutcome::kCompleted) {
            // Health + budget feeds see every completion, including
            // duplicates — the node really did take that long.
            if (_health != nullptr)
                _health->recordLatency(tagged.node, o.latencySeconds,
                                       o.at);
            result.totalExecSeconds += o.execSeconds;
            if (pit == _ticketToPrimary.end())
                continue;
            Watch& watch = _watches.at(pit->second);
            const bool hedgeSide = o.ticket == watch.hedgeTicket;
            _functionSketches[watch.function].add(o.latencySeconds);
            if (!watch.resolved) {
                // First winner commits the request.
                watch.resolved = true;
                watch.e2eSeconds = sim::toSeconds(o.at - watch.arrival);
                _requestSketch.add(watch.e2eSeconds);
                if (o.at >= _recoveryFrom)
                    _recoverySketch.add(watch.e2eSeconds);
                if (hedgeSide) {
                    watch.hedgeDone = true;
                    ++result.hedgesWon;
                    if (_obs != nullptr) {
                        _obs->counters().bump(obs::Counter::HedgesWon,
                                              o.at);
                        _obs->emit(o.at, obs::EventType::HedgeWon,
                                   watch.primaryRoot, watch.function,
                                   static_cast<std::uint8_t>(
                                       tagged.node));
                    }
                } else {
                    watch.primaryDone = true;
                }
                // Deterministic loser cancellation. Every dispatch is
                // always delivered (messages delay, never vanish), so
                // admitted == arrivals + rerouted + hedges_launched
                // stays an exact identity: the cancel goes to the
                // loser's node if it has admitted, and is deferred to
                // its kAdmitted otherwise.
                const bool loserIsHedge = !hedgeSide;
                const bool loserLive =
                    loserIsHedge
                        ? (watch.hedgeTicket != 0 && !watch.hedgeDone)
                        : !watch.primaryDone;
                if (loserLive && !watch.cancelIssued) {
                    const bool loserAdmitted = loserIsHedge
                                                   ? watch.hedgeAdmitted
                                                   : watch.primaryAdmitted;
                    if (loserAdmitted) {
                        issueCancel(loserIsHedge ? watch.hedgeNode
                                                 : watch.primaryNode,
                                    loserIsHedge ? watch.hedgeTicket
                                                 : watch.primaryTicket);
                        watch.cancelIssued = true;
                    }
                    // else: still in flight; the cancel is issued when
                    // its kAdmitted surfaces at a later barrier.
                }
            } else {
                // Both sides completed: the cancel raced the loser's
                // finish. All of its execution is waste.
                ++result.duplicateCompletions;
                result.wastedExecSeconds += o.execSeconds;
                if (hedgeSide) {
                    if (!watch.hedgeDone) {
                        watch.hedgeDone = true;
                        ++result.hedgesLost;
                        if (_obs != nullptr) {
                            _obs->counters().bump(
                                obs::Counter::HedgesLost, o.at);
                            _obs->emit(o.at, obs::EventType::HedgeLost,
                                       watch.primaryRoot, watch.function,
                                       static_cast<std::uint8_t>(
                                           watch.hedgeNode));
                        }
                    }
                } else {
                    watch.primaryDone = true;
                }
            }
            eraseWatchIfComplete(pit->second);
            continue;
        }

        if (o.kind == platform::TicketOutcome::kCancelled) {
            result.wastedExecSeconds += o.execSeconds;
            const auto probeIt = _probeTickets.find(o.ticket);
            if (probeIt != _probeTickets.end()) {
                _health->noteProbeAborted(probeIt->second);
                _probeTickets.erase(probeIt);
            }
            if (pit == _ticketToPrimary.end())
                continue;
            Watch& watch = _watches.at(pit->second);
            if (o.ticket == watch.hedgeTicket) {
                if (!watch.hedgeDone) {
                    watch.hedgeDone = true;
                    ++result.hedgesCancelled;
                    if (_obs != nullptr) {
                        _obs->counters().bump(
                            obs::Counter::HedgesCancelled, o.at);
                        _obs->emit(o.at, obs::EventType::HedgeCancelled,
                                   watch.primaryRoot, watch.function,
                                   static_cast<std::uint8_t>(
                                       watch.hedgeNode));
                    }
                }
            } else {
                watch.primaryDone = true;
            }
            eraseWatchIfComplete(pit->second);
            continue;
        }

        // kFailed / kShed: the attempt died without completing.
        const auto probeIt = _probeTickets.find(o.ticket);
        if (probeIt != _probeTickets.end()) {
            _health->noteProbeAborted(probeIt->second);
            _probeTickets.erase(probeIt);
        }
        if (pit == _ticketToPrimary.end())
            continue;
        Watch& watch = _watches.at(pit->second);
        noteSideDone(watch, o.ticket == watch.hedgeTicket, result, o.at);
        // Every attempt is terminal and none completed: the request
        // failed at the client, which re-submits after its backoff
        // when retry feedback is armed.
        if (!watch.resolved && watch.primaryDone &&
            (watch.hedgeTicket == 0 || watch.hedgeDone)) {
            scheduleFeedbackRetry(watch, o.at);
        }
        eraseWatchIfComplete(pit->second);
    }
}

// ---- recovery orchestration (coordinator only) --------------------------

LayerCensus
ShardedCluster::censusOf(std::size_t index) const
{
    // Count every live container at the layer it has installed (or is
    // installing toward): busy User containers are warm capital just
    // as much as idle ones — at outage time under load they are MOST
    // of the working set. Iteration is in ascending container-id
    // (creation) order and functions accumulate into a sorted map, so
    // the census is identical at any shard count.
    LayerCensus census;
    platform::Node& node = *_nodes[index];
    std::map<workload::FunctionId, std::uint32_t> users;
    for (const container::ContainerId id :
         node.pool().allContainerIds()) {
        const container::Container* c = node.pool().byId(id);
        if (c == nullptr || c->state() == container::State::Dead)
            continue;
        const workload::Layer layer =
            c->state() == container::State::Initializing
                ? c->targetLayer()
                : c->layer();
        switch (layer) {
        case workload::Layer::Bare:
            ++census.bare;
            break;
        case workload::Layer::Lang:
            if (c->language()) {
                ++census.lang[workload::languageIndex(*c->language())];
            }
            break;
        case workload::Layer::User:
            ++users[c->function()];
            break;
        case workload::Layer::None:
            break;
        }
    }
    census.user.assign(users.begin(), users.end());
    return census;
}

void
ShardedCluster::applyRecovery(sim::Tick windowStart, sim::Tick windowEnd,
                              std::uint64_t& seq)
{
    std::vector<RecoveryAction> actions;
    const int floor = _recovery->onBarrier(
        windowStart, windowEnd, _summaries, _offeredLoad,
        [this](std::size_t index) { return censusOf(index); }, actions);
    for (const RecoveryAction& action : actions) {
        if (action.kind == RecoveryAction::kCrashNode) {
            // A drain end restarts the node through the ordinary
            // crash path: warm state is torn down and anything still
            // in flight (timeout kill) fails over like a crash.
            _summaries[action.node].down = 1;
            queueInput(action.node,
                       {action.at, seq++, workload::kInvalidFunction,
                        action.downUntil, ShardInput::kCrash});
        } else {
            queueInput(action.node,
                       {action.at, seq++, action.function,
                        static_cast<sim::Tick>(
                            static_cast<std::uint8_t>(action.layer)),
                        ShardInput::kPrewarm});
        }
    }
    if (floor != _recoveryFloor) {
        _recoveryFloor = floor;
        for (auto& node : _nodes)
            node->setRecoveryPressureFloor(floor);
    }
}

void
ShardedCluster::scheduleFeedbackRetry(const Watch& watch, sim::Tick at)
{
    if (_recovery == nullptr)
        return;
    const fault::DomainPlan& plan = _config.node.fault.domain;
    if (!plan.retryFeedbackEnabled || watch.isProbe ||
        watch.feedbackAttempt >= plan.retryMaxAttempts)
        return;
    const sim::Tick backoff = std::max<sim::Tick>(
        1, sim::fromSeconds(plan.retryBackoffSeconds));
    _feedbackQueue.push_back(
        {at + backoff, _feedbackSeq++, watch.function,
         watch.feedbackAttempt + 1});
}

void
ShardedCluster::drainFeedbackRetries(sim::Tick windowEnd,
                                     std::uint64_t& seq,
                                     ClusterResult& result)
{
    (void)result;
    if (_feedbackIdx >= _feedbackQueue.size())
        return;
    // Outcomes drain in (at, ...) order with a constant backoff, so
    // the tail is already sorted; the sort is a cheap invariant guard
    // (its (at, seq) key is a total order, so it cannot perturb
    // determinism either way).
    std::sort(_feedbackQueue.begin() +
                  static_cast<std::ptrdiff_t>(_feedbackIdx),
              _feedbackQueue.end(),
              [](const FeedbackRetry& a, const FeedbackRetry& b) {
                  return a.at != b.at ? a.at < b.at : a.seq < b.seq;
              });
    while (_feedbackIdx < _feedbackQueue.size() &&
           _feedbackQueue[_feedbackIdx].at < windowEnd) {
        const FeedbackRetry retry = _feedbackQueue[_feedbackIdx++];
        const std::size_t target =
            _scheduler.pick(_summaries, retry.function);
        ++_retriesFeedback;
        ++_offeredLoad;
        if (_obs != nullptr) {
            _obs->counters().bump(obs::Counter::RecoveryRetries,
                                  retry.at);
            _obs->emit(retry.at, obs::EventType::RecoveryRetry, 0,
                       retry.function,
                       static_cast<std::uint8_t>(target),
                       static_cast<std::uint8_t>(
                           std::min<std::uint32_t>(retry.attempt, 255)));
        }
        const std::uint64_t ticket = _nextTicket++;
        Watch watch;
        watch.function = retry.function;
        watch.arrival = retry.at;
        watch.sentAt = retry.at;
        watch.primaryTicket = ticket;
        watch.primaryNode = static_cast<std::uint32_t>(target);
        watch.feedbackAttempt = retry.attempt;
        _watches.emplace(ticket, watch);
        _ticketToPrimary.emplace(ticket, ticket);
        sendInvoke(target, retry.function, 0, ticket, retry.at,
                   windowEnd, seq);
    }
    if (_feedbackIdx == _feedbackQueue.size()) {
        _feedbackQueue.clear();
        _feedbackIdx = 0;
    }
}

} // namespace rc::cluster
