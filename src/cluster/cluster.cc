#include "cluster/cluster.hh"

#include "sim/logging.hh"

namespace rc::cluster {

Cluster::Cluster(const workload::Catalog& catalog,
                 const PolicyFactory& factory, ClusterConfig config)
    : _catalog(catalog), _config(config), _scheduler(config.scheduling)
{
    if (config.nodes == 0)
        sim::fatal("Cluster: need at least one node");
    // One Observer cannot serve several nodes: each node runs its own
    // engine timeline (ticks would interleave non-monotonically) and
    // pools restart container ids at 1 (ids would collide). The
    // cluster therefore keeps the configured observer for its own
    // routing events only and runs the nodes uninstrumented.
    _obs = config.node.observer;
    for (std::size_t i = 0; i < config.nodes; ++i) {
        platform::NodeConfig nodeConfig = config.node;
        nodeConfig.seed = config.node.seed + i; // independent exec draws
        nodeConfig.observer = nullptr;
        _nodes.push_back(std::make_unique<platform::Node>(
            _catalog, factory(), nodeConfig));
    }
}

ClusterResult
Cluster::run(const std::vector<trace::Arrival>& arrivals)
{
    // Route each arrival with every node synchronized to the arrival
    // instant, so the scheduler sees current pool states.
    for (const auto& arrival : arrivals) {
        for (auto& node : _nodes)
            node->advanceTo(arrival.time);
        const std::size_t target =
            _scheduler.pick(_nodes, arrival.function);
        if (_obs != nullptr) {
            _obs->emit(arrival.time, obs::EventType::ClusterRouted, 0,
                       arrival.function,
                       static_cast<std::uint8_t>(target));
        }
        _nodes[target]->invokeNow(arrival.function);
    }
    for (auto& node : _nodes) {
        node->engine().run();
        node->finalize();
    }

    ClusterResult result;
    result.schedulingName = toString(_config.scheduling);
    for (const auto& node : _nodes) {
        const auto& metrics = node->metrics();
        result.invocations += metrics.total();
        result.coldStarts += metrics.countOf(platform::StartupType::Cold);
        result.totalStartupSeconds += metrics.totalStartupSeconds();
        result.totalWasteMbSeconds +=
            node->pool().wasteLog().totalWasteMbSeconds();
        result.strandedInvocations += node->strandedInvocations();
        result.perNodeInvocations.push_back(metrics.total());
    }
    if (result.invocations > 0) {
        result.meanStartupSeconds = result.totalStartupSeconds /
            static_cast<double>(result.invocations);
    }
    return result;
}

} // namespace rc::cluster
