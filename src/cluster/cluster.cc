#include "cluster/cluster.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/quantile_sketch.hh"

namespace rc::cluster {

std::vector<CrashEvent>
drawCrashSchedule(const fault::FaultPlan& plan, std::uint64_t seed,
                  std::size_t nodes, sim::Tick horizon)
{
    std::vector<CrashEvent> crashes;
    if (!plan.active() || plan.nodeMtbfSeconds <= 0.0)
        return crashes;
    const sim::Rng base(seed);
    const sim::Tick downtime = sim::fromSeconds(plan.nodeDowntimeSeconds);
    for (std::size_t i = 0; i < nodes; ++i) {
        sim::Rng rng =
            base.stream("cluster-fault-node-" + std::to_string(i));
        sim::Tick t = 0;
        while (true) {
            const double gap =
                rng.exponential(1.0 / plan.nodeMtbfSeconds);
            t += std::max<sim::Tick>(1, sim::fromSeconds(gap));
            if (t > horizon)
                break;
            crashes.push_back(CrashEvent{t, i, t + downtime});
            t += downtime; // next crash after the restart
        }
    }
    std::sort(crashes.begin(), crashes.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                  return a.at != b.at ? a.at < b.at : a.node < b.node;
              });
    return crashes;
}

Cluster::Cluster(const workload::Catalog& catalog,
                 const PolicyFactory& factory, ClusterConfig config)
    : _catalog(catalog), _config(config), _scheduler(config.scheduling)
{
    if (config.nodes == 0)
        sim::fatal("Cluster: need at least one node");
    // One Observer cannot serve several nodes: each node runs its own
    // engine timeline (ticks would interleave non-monotonically) and
    // pools restart container ids at 1 (ids would collide). The
    // cluster therefore keeps the configured observer for its own
    // routing events only and runs the nodes uninstrumented — except
    // for spans, whose node-stamped identities survive merging: when
    // the configured observer has spans enabled, each node gets a
    // private span-only Observer and run() folds the buffers back
    // into _obs with one deterministic sort.
    _obs = config.node.observer;
    const bool spans = _obs != nullptr && _obs->spansEnabled();
    for (std::size_t i = 0; i < config.nodes; ++i) {
        platform::NodeConfig nodeConfig = config.node;
        nodeConfig.seed = config.node.seed + i; // independent exec draws
        nodeConfig.observer = nullptr;
        if (spans) {
            obs::ObserverConfig spanConfig;
            spanConfig.traceEnabled = false;
            spanConfig.profilingEnabled = false;
            spanConfig.counterInterval = _obs->config().counterInterval;
            spanConfig.spansEnabled = true;
            spanConfig.maxSpans = _obs->config().maxSpans;
            auto nodeObs = std::make_unique<obs::Observer>(spanConfig);
            nodeObs->setSpanNode(static_cast<std::uint16_t>(i));
            nodeConfig.observer = nodeObs.get();
            _nodeObservers.push_back(std::move(nodeObs));
        }
        _nodes.push_back(std::make_unique<platform::Node>(
            _catalog, factory(), nodeConfig));
    }
    const admission::AdmissionPlan& admission = config.node.admission;
    if (admission.breakerFailureThreshold > 0.0) {
        admission::CircuitBreaker::Config breaker;
        breaker.failureThreshold = admission.breakerFailureThreshold;
        breaker.window = sim::fromSeconds(admission.breakerWindowSeconds);
        breaker.cooloff =
            sim::fromSeconds(admission.breakerCooloffSeconds);
        breaker.minSamples = admission.breakerMinSamples;
        _breakers.assign(_nodes.size(),
                         admission::CircuitBreaker(breaker));
    }
}

ClusterResult
Cluster::run(const std::vector<trace::Arrival>& arrivals)
{
    ClusterResult result;
    result.schedulingName = toString(_config.scheduling);

    sim::Tick horizon = 0;
    for (const auto& arrival : arrivals)
        horizon = std::max(horizon, arrival.time);

    // The cluster owns node crashes: it must observe each one to
    // fail the lost work over, so nodes arm only their local fault
    // chains (init/exec faults, overload windows) and the crash
    // schedule is pre-drawn from a dedicated per-node stream.
    for (auto& node : _nodes)
        node->armAdmission(horizon);
    const fault::FaultPlan& plan = _config.node.fault;
    if (plan.active()) {
        for (auto& node : _nodes)
            node->armFaults(horizon, /*manageNodeCrashes=*/false);
    }
    const std::vector<CrashEvent> crashes = drawCrashSchedule(
        plan, _config.node.seed, _nodes.size(), horizon);

    // Circuit breakers (rc::admission): before each routing decision,
    // feed every node's new failure/success outcomes into its breaker
    // and compute which nodes are tripped. A tripped node stops
    // receiving work until its cooloff elapses; the half-open probe
    // then decides between closing and re-opening.
    std::vector<std::uint8_t> tripped(_nodes.size(), 0);
    std::vector<std::uint64_t> seenFailures(_nodes.size(), 0);
    std::vector<std::uint64_t> seenSuccesses(_nodes.size(), 0);
    std::vector<std::size_t> seenTransitions(_nodes.size(), 0);
    const auto routeMask =
        [&](sim::Tick when) -> const std::vector<std::uint8_t>* {
        if (_breakers.empty())
            return nullptr;
        for (std::size_t i = 0; i < _nodes.size(); ++i) {
            admission::CircuitBreaker& breaker = _breakers[i];
            const std::uint64_t failures =
                _nodes[i]->invoker().failedInvocations();
            const std::uint64_t successes = _nodes[i]->metrics().total();
            for (; seenFailures[i] < failures; ++seenFailures[i])
                breaker.recordFailure(when);
            for (; seenSuccesses[i] < successes; ++seenSuccesses[i])
                breaker.recordSuccess(when);
            tripped[i] = breaker.allows(when) ? 0 : 1;
            const auto& transitions = breaker.transitions();
            for (; seenTransitions[i] < transitions.size();
                 ++seenTransitions[i]) {
                const auto& tr = transitions[seenTransitions[i]];
                if (_obs == nullptr)
                    continue;
                if (tr.to == admission::CircuitBreaker::State::Open) {
                    _obs->counters().bump(obs::Counter::BreakerOpenTotal,
                                          tr.at);
                }
                _obs->emit(tr.at, obs::EventType::BreakerStateChanged, 0,
                           0xffffffffU, static_cast<std::uint8_t>(tr.to),
                           static_cast<std::uint8_t>(tr.from),
                           static_cast<double>(i));
            }
        }
        return &tripped;
    };

    // Fail over everything a crashing node loses: advance the whole
    // cluster to the crash instant, extract the node's queued and
    // in-flight work, and re-route it to healthy nodes immediately.
    std::size_t nextCrash = 0;
    const auto processCrashesUntil = [&](sim::Tick when) {
        while (nextCrash < crashes.size() &&
               crashes[nextCrash].at <= when) {
            const CrashEvent ev = crashes[nextCrash++];
            for (auto& node : _nodes)
                node->advanceTo(ev.at);
            const auto lost = _nodes[ev.node]->crashNow(ev.downUntil);
            ++result.nodeCrashes;
            if (_obs != nullptr) {
                _obs->counters().bump(obs::Counter::NodeCrashes, ev.at);
                _obs->emit(ev.at, obs::EventType::NodeCrashed, 0, 0,
                           static_cast<std::uint8_t>(ev.node), 0,
                           sim::toSeconds(ev.downUntil - ev.at),
                           static_cast<double>(lost.size()));
            }
            for (const auto& ticket : lost) {
                const std::size_t target = _scheduler.pick(
                    _nodes, ticket.function, routeMask(ev.at));
                ++result.reroutedInvocations;
                if (_obs != nullptr) {
                    _obs->counters().bump(obs::Counter::FailoverRouted,
                                          ev.at);
                    _obs->emit(ev.at, obs::EventType::FailoverRouted, 0,
                               ticket.function,
                               static_cast<std::uint8_t>(target),
                               static_cast<std::uint8_t>(ev.node));
                }
                // The re-issued invocation's root span chains to the
                // root the crash closed (outcome rerouted), so the
                // retry is attributable to the originating arrival.
                _nodes[target]->invokeNow(ticket.function,
                                          ticket.originSpan);
            }
        }
    };

    // Route each arrival with every node synchronized to the arrival
    // instant, so the scheduler sees current pool states.
    for (const auto& arrival : arrivals) {
        processCrashesUntil(arrival.time);
        for (auto& node : _nodes)
            node->advanceTo(arrival.time);
        const std::size_t target = _scheduler.pick(
            _nodes, arrival.function, routeMask(arrival.time));
        if (_obs != nullptr) {
            _obs->emit(arrival.time, obs::EventType::ClusterRouted, 0,
                       arrival.function,
                       static_cast<std::uint8_t>(target));
        }
        _nodes[target]->invokeNow(arrival.function);
    }
    processCrashesUntil(horizon);
    for (auto& node : _nodes) {
        node->engine().run();
        node->finalize();
    }

    // Fleet latency sketch: one QuantileSketch per node, merged in
    // node-index order. Bucket-wise merge is commutative and
    // associative, so the result is identical no matter how the
    // fleet was partitioned — the sharded core relies on this.
    stats::QuantileSketch e2eSketch;
    for (const auto& node : _nodes) {
        const auto& metrics = node->metrics();
        stats::QuantileSketch nodeSketch;
        for (const auto& record : metrics.records())
            nodeSketch.add(sim::toSeconds(record.endToEnd));
        e2eSketch.merge(nodeSketch);
        result.invocations += metrics.total();
        result.coldStarts += metrics.countOf(platform::StartupType::Cold);
        result.totalStartupSeconds += metrics.totalStartupSeconds();
        result.totalWasteMbSeconds +=
            node->pool().wasteLog().totalWasteMbSeconds();
        result.strandedInvocations += node->strandedInvocations();
        result.perNodeInvocations.push_back(metrics.total());
        result.failedInvocations +=
            node->invoker().failedInvocations();
        result.rejectedInvocations +=
            node->invoker().rejectedInvocations();
        result.shedDeadline += node->invoker().shedDeadlineCount();
        result.shedPressure += node->invoker().shedPressureCount();
        result.admittedInvocations +=
            node->invoker().admittedInvocations();
        result.engineEvents += node->engine().executedEvents();
    }
    for (const auto& breaker : _breakers)
        result.breakerOpens += breaker.openCount();
    if (result.invocations > 0) {
        result.meanStartupSeconds = result.totalStartupSeconds /
            static_cast<double>(result.invocations);
    }
    if (e2eSketch.count() > 0) {
        result.e2eP50Seconds = e2eSketch.median();
        result.e2eP99Seconds = e2eSketch.p99();
    }
    // Fold the per-node span buffers into the routing observer. The
    // sort key (invocation id, span id) embeds the node index, so the
    // merged dump is byte-identical however the run was partitioned.
    if (!_nodeObservers.empty()) {
        std::vector<obs::Span> all;
        std::uint64_t dropped = 0;
        for (auto& nodeObs : _nodeObservers) {
            const auto& spans = nodeObs->spans();
            all.insert(all.end(), spans.begin(), spans.end());
            dropped += nodeObs->droppedSpans();
        }
        _obs->absorbSpans(std::move(all), dropped, horizon);
    }
    return result;
}

} // namespace rc::cluster
