/**
 * @file
 * Sharded conservative-synchronization cluster core: one cluster run
 * on all cores, bit-identical at any shard and thread count.
 *
 * The legacy Cluster steps every node on one thread, advancing the
 * whole fleet to each arrival instant. The sharded core partitions
 * nodes into shards (node i -> shard i % shards), each stepping its
 * nodes' engines on a worker thread, and synchronizes them on a
 * barrier grid whose pitch is the *lookahead* L — the minimum
 * cross-node hop latency from the cost model. Because no effect can
 * cross nodes faster than L, a shard may run a whole window
 * [W, W + L) without observing the others.
 *
 * All cross-shard interaction is mediated by the single-threaded
 * coordinator at barriers:
 *
 *  - arrivals in the window are routed against barrier-time node
 *    summaries (ShardScheduler) and appended to per-node inboxes;
 *  - pre-drawn node crashes are appended to the owning node's inbox;
 *  - work lost to a crash surfaces in the shard's outbox and is
 *    re-routed at the next barrier, delivered one failover hop after
 *    the crash (never earlier than the next window);
 *  - each shard's crash log and outbox are merged sort-once in a
 *    partition-independent order, and inboxes are drained in
 *    (tick, kind, sequence) order, where the sequence is assigned by
 *    the coordinator.
 *
 * Determinism argument (DESIGN.md §11): every coordinator decision is
 * a pure function of the trace, the pre-drawn crash schedule, and
 * node summaries; every node's event sequence is a pure function of
 * its inbox, drained in an order fixed by (tick, kind, seq); and all
 * merge orders are keyed by (tick, node) rather than by shard. None
 * of these depend on how nodes are grouped into shards or on how
 * many threads step them, so report CSVs are byte-identical at any
 * --shards / thread count. The seed-regression suite pins this at
 * shards = 1, 2, 8.
 */

#ifndef RC_CLUSTER_SHARDED_CLUSTER_HH_
#define RC_CLUSTER_SHARDED_CLUSTER_HH_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/node_health.hh"
#include "trace/arrival_source.hh"
#include "cluster/recovery_orchestrator.hh"
#include "cluster/shard_scheduler.hh"
#include "core/cost_model.hh"
#include "fault/network_plan.hh"
#include "sim/shard_executor.hh"
#include "stats/quantile_sketch.hh"

namespace rc::cluster {

/** Sharded-execution knobs (on top of a ClusterConfig). */
struct ShardedConfig
{
    /** Number of node partitions; clamped to [1, nodes]. */
    std::size_t shards = 1;
    /**
     * Worker threads stepping the shards; 0 picks
     * min(shards, hardware concurrency). Never affects results.
     */
    std::size_t threads = 0;
    /**
     * Barrier-grid pitch in ticks; 0 derives the conservative
     * lookahead from the cost model's cross-node hop latencies.
     */
    sim::Tick lookahead = 0;
    /**
     * Summaries are refreshed at least this often while input
     * remains, even across windows with no arrivals (rounded up to a
     * whole number of lookahead windows). Bounds routing staleness on
     * sparse traces.
     */
    sim::Tick maxSummaryStaleness = sim::kSecond;
    /** Source of the hop latencies when lookahead is derived. */
    core::CostConfig cost;
    /**
     * Collect coordinator/parallel phase wall-clock timings into the
     * ClusterResult (and the coordinator_drain_ns / route_ns /
     * summary_capture_ns gauges when an observer is attached). Off by
     * default: the per-window clock reads cost ~1% on short windows
     * and the numbers are nondeterministic, so only bench and
     * instrumented runs turn this on. Never affects results.
     */
    bool phaseTimings = false;
    /**
     * Test knob: capture every node's summary at every barrier the
     * shard runs instead of only nodes whose summaryStamp changed.
     * The delta-identity test pins full == delta byte-for-byte; it
     * also forces every shard to run every window (the active-shard
     * skip would otherwise starve the full capture). Never changes
     * results by design — only wall clock.
     */
    bool fullSummaryCapture = false;
};

/**
 * One cross-shard message: an invocation delivered to a node, or a
 * pre-drawn crash instant. Inboxes are drained in shardInputBefore
 * order, which is independent of the shard partitioning.
 */
struct ShardInput
{
    sim::Tick tick = 0;
    /** Coordinator-assigned global sequence (deterministic). */
    std::uint64_t seq = 0;
    workload::FunctionId function = workload::kInvalidFunction;
    /** Crash: restart instant. Recovery prewarm: the Layer to
     *  install, cast — the field is otherwise unused by that kind. */
    sim::Tick downUntil = 0;
    /** 0 = crash, 1 = invocation, 2 = hedge cancel, 3 = recovery
     *  prewarm; ascending order at equal ticks (crashes first,
     *  prewarms last). */
    std::uint8_t kind = 1;
    /**
     * Invoke only: root span this delivery chains to (failover
     * re-issue or hedge primary), 0 for fresh arrivals. Span ids
     * embed (node, local seq), so the value is independent of the
     * shard partitioning.
     */
    std::uint64_t originSpan = 0;
    /**
     * Invoke: coordinator watch ticket (0 = untracked). Cancel: the
     * ticket to cancel.
     */
    std::uint64_t ticket = 0;

    static constexpr std::uint8_t kCrash = 0;
    static constexpr std::uint8_t kInvoke = 1;
    static constexpr std::uint8_t kCancel = 2;
    static constexpr std::uint8_t kPrewarm = 3;
};

/**
 * Round @p tick up to the barrier grid: the smallest multiple of
 * @p pitch that is >= @p tick. Window-end alignment must use this —
 * feeding a raw (unaligned) end tick into the nextTick scan would
 * propose a barrier off the grid, and the window containing it would
 * then be skipped entirely (the PR 8 partition-end wakeup bug).
 */
inline sim::Tick
alignToBarrier(sim::Tick tick, sim::Tick pitch)
{
    return (tick + pitch - 1) / pitch * pitch;
}

/**
 * The inbox drain order: (tick, kind, seq). Matches the legacy serial
 * cluster, which processes crashes due at an arrival instant before
 * the arrival itself. The seq tie-break is assigned globally by the
 * coordinator, so the order never depends on the partitioning.
 */
inline bool
shardInputBefore(const ShardInput& a, const ShardInput& b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    return a.seq < b.seq;
}

/** A Cluster stepped by shards between conservative barriers. */
class ShardedCluster
{
  public:
    using PolicyFactory = Cluster::PolicyFactory;

    ShardedCluster(const workload::Catalog& catalog,
                   const PolicyFactory& factory, ClusterConfig config,
                   ShardedConfig sharded = {});

    /** Route and replay @p arrivals to completion on all nodes.
     *  Compatibility shim over the streaming overload (wraps the
     *  vector in a trace::VectorArrivalSource). */
    ClusterResult run(const std::vector<trace::Arrival>& arrivals);

    /**
     * Route and replay @p source to completion on all nodes, pulling
     * one arrival at a time: the cluster holds only the current
     * window's arrivals, so RSS is O(window) regardless of trace
     * length. Yields byte-identical results to the vector overload
     * for the same arrival sequence (pinned by the streaming
     * equivalence golden).
     */
    ClusterResult run(trace::ArrivalSource& source);

    /** Effective barrier-grid pitch in ticks. */
    sim::Tick lookahead() const { return _lookahead; }

    /** Effective shard count after clamping. */
    std::size_t shardCount() const { return _shards.size(); }

    /** Worker threads the run will use. */
    std::size_t threadCount() const { return _threads; }

    /** Nodes (for inspection in tests). */
    const std::vector<std::unique_ptr<platform::Node>>& nodes() const
    {
        return _nodes;
    }

    /** Per-node circuit breakers (empty unless the plan arms them). */
    const std::vector<admission::CircuitBreaker>& breakers() const
    {
        return _breakers;
    }

  private:
    /** Work a crash displaced, awaiting re-route at the next barrier. */
    struct FailoverItem
    {
        sim::Tick deliverAt = 0;
        sim::Tick crashAt = 0;
        std::uint32_t fromNode = 0;
        /** Position within the crash's lost list (merge tie-break). */
        std::uint32_t index = 0;
        workload::FunctionId function = workload::kInvalidFunction;
        /** Root span the crash closed (rerouted); chains the retry. */
        std::uint64_t originSpan = 0;
        /** Cluster watch ticket the invocation carried; 0 = none. */
        std::uint64_t ticket = 0;
    };

    /** Crash observed inside a shard window (merged sort-once). */
    struct CrashRecord
    {
        sim::Tick at = 0;
        std::uint32_t node = 0;
        sim::Tick downUntil = 0;
        std::uint32_t lost = 0;
    };

    /** One routed input awaiting distribution into its shard's bin. */
    struct RoutedInput
    {
        ShardInput input;
        std::uint32_t node = 0;
    };

    /** Per-shard state; every field is touched only by its shard's
     *  worker during a window and only by the coordinator between
     *  windows (the executor's barrier orders the two). */
    struct Shard
    {
        std::vector<std::size_t> nodes;
        std::vector<CrashRecord> crashLog;
        std::vector<FailoverItem> outbox;
        /** Inputs pre-binned for the coming window: the coordinator
         *  fills it in one batch pass between rounds, the worker
         *  drains and clears it during the round (capacity persists
         *  across windows). */
        std::vector<RoutedInput> bin;
        /** Bin high-water mark; reserved ahead of each distribution
         *  so steady-state windows never reallocate. */
        std::size_t binHighWater = 0;
        /** (node, summary) pairs captured this window — only nodes
         *  whose summaryStamp moved (delta capture). The coordinator
         *  merges them into _summaries after the round. */
        std::vector<std::pair<std::uint32_t, NodeSummary>> summaryScratch;
        /** Min engine nextEventAt across the shard's nodes as of the
         *  last round it ran; the coordinator skips the shard while
         *  this stays at/past the barrier and its bin is empty. */
        sim::Tick nextEventAt = std::numeric_limits<sim::Tick>::max();
    };

    /**
     * A scheduler->node message in flight through the gray network:
     * routing picked the node at send time; delivery lands after the
     * sampled link delay. Processed in (deliverAt, sendSeq) order.
     */
    struct Delivery
    {
        sim::Tick deliverAt = 0;
        std::uint64_t sendSeq = 0; //!< coordinator send order
        std::uint32_t node = 0;
        workload::FunctionId function = workload::kInvalidFunction;
        std::uint64_t originSpan = 0;
        std::uint64_t ticket = 0;
    };

    /**
     * Coordinator-side state of one ticketed request: the primary
     * attempt, the optional hedge attempt, and the first-winner-
     * commits resolution. Keyed by the primary ticket in an ordered
     * map, so the per-barrier hedge-deadline scan iterates in ticket
     * (= issue) order regardless of hash layouts.
     */
    struct Watch
    {
        workload::FunctionId function = workload::kInvalidFunction;
        sim::Tick arrival = 0;   //!< trace arrival (request e2e base)
        sim::Tick sentAt = 0;    //!< primary send instant
        std::uint64_t primaryTicket = 0;
        std::uint64_t hedgeTicket = 0; //!< 0 until a hedge launches
        std::uint32_t primaryNode = 0;
        std::uint32_t hedgeNode = 0;
        std::uint64_t primaryRoot = 0; //!< root span id (spans on)
        bool primaryDone = false;
        bool hedgeDone = false;
        /** kAdmitted seen for the side — the loser cancel can only be
         *  delivered to a node that has the ticket live. A loser still
         *  in flight gets its cancel deferred to its admission. */
        bool primaryAdmitted = false;
        bool hedgeAdmitted = false;
        bool resolved = false;    //!< a winner committed
        bool cancelIssued = false;
        bool isProbe = false;     //!< quarantine probe (never hedged)
        bool failover = false;    //!< re-routed off a crash (no e2e base)
        double e2eSeconds = -1.0; //!< winner request-level latency
        /** Client retry-feedback generation (0 = original request). */
        std::uint32_t feedbackAttempt = 0;
    };

    /** One client retry-feedback re-submission awaiting dispatch. */
    struct FeedbackRetry
    {
        sim::Tick at = 0;        //!< backoff expiry
        std::uint64_t seq = 0;   //!< enqueue order (tie-break)
        workload::FunctionId function = workload::kInvalidFunction;
        std::uint32_t attempt = 0;
    };

    NodeSummary captureSummary(platform::Node& node) const;
    void runShardWindow(Shard& shard, sim::Tick windowEnd);
    void refreshBreakers(sim::Tick now);

    /**
     * Queue one cross-shard input for the next parallel round. The
     * input lands in _routeScratch (one flat append, no per-node
     * vector churn) and is distributed into its shard's bin in one
     * batch pass right before the round. The caller stamps seq at
     * creation, exactly as the per-inbox pushes used to.
     */
    void queueInput(std::size_t node, const ShardInput& input)
    {
        _routeScratch.push_back(
            {input, static_cast<std::uint32_t>(node)});
        ++_pendingInputs[node];
    }

    // ---- gray network / tail tolerance (coordinator only) --------------

    /** True when ticketed dispatch is on: the network plan or the
     *  domain plan is active (both track requests end-to-end). */
    bool ticketing() const { return _ticketed; }

    /** True when a DomainPlan drives a recovery orchestrator. */
    bool domainActive() const { return _recovery != nullptr; }

    /**
     * Route one invoke to @p node through the gray network: samples
     * the link delay, emits delay/drop events, and either delivers
     * into the node's inbox (deliverAt < @p windowEnd) or parks the
     * message in _pendingDeliveries for a later window.
     */
    void sendInvoke(std::size_t node, workload::FunctionId function,
                    std::uint64_t originSpan, std::uint64_t ticket,
                    sim::Tick sendAt, sim::Tick windowEnd,
                    std::uint64_t& seq);

    /** Apply partition ends due by @p windowStart and starts due
     *  before @p windowEnd to the per-node severed flags. */
    void applyPartitions(sim::Tick windowStart, sim::Tick windowEnd,
                         ClusterResult& result);

    /** Emit NodeDegraded events for windows starting before @p end. */
    void emitDegradedEvents(sim::Tick end);

    /**
     * Process ticket outcomes drained from every node at a barrier:
     * first-winner-commits hedge resolution, loser cancellation,
     * latency feeds (function sketches, node health), and the
     * counter/event bookkeeping.
     */
    void processOutcomes(sim::Tick barrier, std::uint64_t& seq,
                         ClusterResult& result);

    /** Launch hedges for watches past their latency budget. */
    void launchHedges(sim::Tick now, sim::Tick windowEnd,
                      std::uint64_t& seq, ClusterResult& result);

    /** One attempt of @p watch turned terminal without completing. */
    void noteSideDone(Watch& watch, bool hedgeSide, ClusterResult& result,
                      sim::Tick at);

    /** Emit quarantine FSM transitions accumulated in the tracker. */
    void emitHealthTransitions();

    /** Drop a fully-terminal watch and its ticket mappings. */
    void eraseWatchIfComplete(std::uint64_t primaryTicket);

    // ---- recovery orchestration (coordinator only) ----------------------

    /**
     * Coordinator-phase recovery step: run the orchestrator FSM,
     * convert its actions into shard inputs (drain-end crashes,
     * census prewarms), and propagate the admission pressure floor to
     * every node when it changes.
     */
    void applyRecovery(sim::Tick windowStart, sim::Tick windowEnd,
                       std::uint64_t& seq);

    /** Live layer census of node @p index (coordinator phase only:
     *  single-threaded, node advanced to the last barrier). */
    LayerCensus censusOf(std::size_t index) const;

    /** A ticketed request failed terminally: enqueue the client's
     *  re-submission after the retry backoff (no-op unless the plan
     *  arms retry feedback or the attempt budget is spent). */
    void scheduleFeedbackRetry(const Watch& watch, sim::Tick at);

    /** Dispatch feedback retries whose backoff expired before
     *  @p windowEnd, exactly like fresh arrivals. */
    void drainFeedbackRetries(sim::Tick windowEnd, std::uint64_t& seq,
                              ClusterResult& result);

    const workload::Catalog& _catalog;
    ClusterConfig _config;
    ShardedConfig _sharded;
    sim::Tick _lookahead = 0;
    std::size_t _threads = 1;
    ShardScheduler _scheduler;
    std::vector<std::unique_ptr<platform::Node>> _nodes;
    std::vector<admission::CircuitBreaker> _breakers;
    obs::Observer* _obs = nullptr;
    /**
     * Span-only per-node observers (same scheme as Cluster): each
     * node buffers its own spans during the parallel phase — no
     * shared state — and run() merges them into _obs sort-once on
     * partition-independent keys after the drain.
     */
    std::vector<std::unique_ptr<obs::Observer>> _nodeObservers;

    std::vector<Shard> _shards;
    std::vector<NodeSummary> _summaries;
    /** Inputs queued since the last round, awaiting pre-binning. */
    std::vector<RoutedInput> _routeScratch;
    /** Per-node count of queued-not-yet-binned inputs. The barrier
     *  scans only test zero/nonzero — this replaces the per-node
     *  inbox emptiness peeks of the old design. */
    std::vector<std::uint32_t> _pendingInputs;
    /** Shards selected for the current round (skip-idle subset). */
    std::vector<std::size_t> _activeShards;
    /** Last captured Node::summaryStamp per node. Written only by the
     *  owning shard's worker during a round (disjoint per shard). */
    std::vector<std::uint64_t> _summaryStamps;
    /** processOutcomes batch scratch (capacity reused per barrier). */
    struct TaggedOutcome
    {
        platform::TicketOutcome outcome;
        std::uint32_t node = 0;
    };
    std::vector<TaggedOutcome> _outcomeScratch;

    // Circuit-breaker feeds (coordinator-only).
    std::vector<std::uint64_t> _seenFailures;
    std::vector<std::uint64_t> _seenSuccesses;
    std::vector<std::size_t> _seenTransitions;

    // ---- gray network / tail tolerance (coordinator-only) --------------

    /** Non-null only when the fault plan's network dimension is
     *  active; every path below is dead code otherwise. */
    const fault::NetworkPlan* _net = nullptr;
    std::unique_ptr<fault::NetworkSampler> _netSampler;
    std::unique_ptr<NodeHealthTracker> _health;
    std::vector<fault::DegradedWindow> _degradedSchedule;
    std::size_t _degradedEmitted = 0;
    std::vector<fault::PartitionEvent> _partitions;
    std::size_t _partitionIdx = 0;     //!< next partition to start
    std::vector<std::size_t> _activePartitions; //!< started, not ended
    std::vector<std::uint8_t> _severed; //!< per-node partition flag
    std::vector<Delivery> _pendingDeliveries; //!< (deliverAt, sendSeq)
    std::size_t _deliveryIdx = 0;
    std::uint64_t _nextTicket = 1;
    std::map<std::uint64_t, Watch> _watches; //!< by primary ticket
    std::unordered_map<std::uint64_t, std::uint64_t> _ticketToPrimary;
    /** Per-function completed-latency sketches (hedge budgets). */
    std::vector<stats::QuantileSketch> _functionSketches;
    /** Request-level end-to-end latencies (winner per request). */
    stats::QuantileSketch _requestSketch;
    /** Same feed, restricted to completions at or after the first
     *  correlated outage — the storm-window tail the recovery arms
     *  actually differ on (whole-run quantiles are dominated by
     *  outage-phase pain common to every recovery policy). 0.1%
     *  relative error: recovery policies move this tail by fractions
     *  of a percent, inside the default 1% grid's bucket width. */
    stats::QuantileSketch _recoverySketch{0.001};
    /** First correlated strike; completions from here feed
     *  _recoverySketch (never when no outage is scheduled). */
    sim::Tick _recoveryFrom = std::numeric_limits<sim::Tick>::max();
    /** Probe tickets in flight, by node (probe-abort bookkeeping). */
    std::unordered_map<std::uint64_t, std::uint32_t> _probeTickets;
    std::uint64_t _msgsDelayed = 0;
    std::uint64_t _msgsDropped = 0;
    std::uint64_t _quarantineViolations = 0;

    // ---- recovery orchestration (coordinator-only) ----------------------

    /** Ticketed dispatch armed (network or domain plan active). */
    bool _ticketed = false;
    /** Non-null only when the domain plan is active. */
    std::unique_ptr<RecoveryOrchestrator> _recovery;
    /** Admission pressure floor currently applied to the fleet. */
    int _recoveryFloor = 0;
    /** Feedback retries in (at, seq) order; _feedbackIdx = next due. */
    std::vector<FeedbackRetry> _feedbackQueue;
    std::size_t _feedbackIdx = 0;
    std::uint64_t _feedbackSeq = 0;
    std::uint64_t _retriesFeedback = 0;
    /** Requests dispatched so far (fresh arrivals + feedback retries;
     *  failovers and hedges re-issue a counted request). The recovery
     *  orchestrator's goodput-ratio denominator. */
    std::uint64_t _offeredLoad = 0;
};

} // namespace rc::cluster

#endif // RC_CLUSTER_SHARDED_CLUSTER_HH_
