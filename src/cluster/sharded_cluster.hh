/**
 * @file
 * Sharded conservative-synchronization cluster core: one cluster run
 * on all cores, bit-identical at any shard and thread count.
 *
 * The legacy Cluster steps every node on one thread, advancing the
 * whole fleet to each arrival instant. The sharded core partitions
 * nodes into shards (node i -> shard i % shards), each stepping its
 * nodes' engines on a worker thread, and synchronizes them on a
 * barrier grid whose pitch is the *lookahead* L — the minimum
 * cross-node hop latency from the cost model. Because no effect can
 * cross nodes faster than L, a shard may run a whole window
 * [W, W + L) without observing the others.
 *
 * All cross-shard interaction is mediated by the single-threaded
 * coordinator at barriers:
 *
 *  - arrivals in the window are routed against barrier-time node
 *    summaries (ShardScheduler) and appended to per-node inboxes;
 *  - pre-drawn node crashes are appended to the owning node's inbox;
 *  - work lost to a crash surfaces in the shard's outbox and is
 *    re-routed at the next barrier, delivered one failover hop after
 *    the crash (never earlier than the next window);
 *  - each shard's crash log and outbox are merged sort-once in a
 *    partition-independent order, and inboxes are drained in
 *    (tick, kind, sequence) order, where the sequence is assigned by
 *    the coordinator.
 *
 * Determinism argument (DESIGN.md §11): every coordinator decision is
 * a pure function of the trace, the pre-drawn crash schedule, and
 * node summaries; every node's event sequence is a pure function of
 * its inbox, drained in an order fixed by (tick, kind, seq); and all
 * merge orders are keyed by (tick, node) rather than by shard. None
 * of these depend on how nodes are grouped into shards or on how
 * many threads step them, so report CSVs are byte-identical at any
 * --shards / thread count. The seed-regression suite pins this at
 * shards = 1, 2, 8.
 */

#ifndef RC_CLUSTER_SHARDED_CLUSTER_HH_
#define RC_CLUSTER_SHARDED_CLUSTER_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/shard_scheduler.hh"
#include "core/cost_model.hh"
#include "sim/shard_executor.hh"

namespace rc::cluster {

/** Sharded-execution knobs (on top of a ClusterConfig). */
struct ShardedConfig
{
    /** Number of node partitions; clamped to [1, nodes]. */
    std::size_t shards = 1;
    /**
     * Worker threads stepping the shards; 0 picks
     * min(shards, hardware concurrency). Never affects results.
     */
    std::size_t threads = 0;
    /**
     * Barrier-grid pitch in ticks; 0 derives the conservative
     * lookahead from the cost model's cross-node hop latencies.
     */
    sim::Tick lookahead = 0;
    /**
     * Summaries are refreshed at least this often while input
     * remains, even across windows with no arrivals (rounded up to a
     * whole number of lookahead windows). Bounds routing staleness on
     * sparse traces.
     */
    sim::Tick maxSummaryStaleness = sim::kSecond;
    /** Source of the hop latencies when lookahead is derived. */
    core::CostConfig cost;
};

/**
 * One cross-shard message: an invocation delivered to a node, or a
 * pre-drawn crash instant. Inboxes are drained in shardInputBefore
 * order, which is independent of the shard partitioning.
 */
struct ShardInput
{
    sim::Tick tick = 0;
    /** Coordinator-assigned global sequence (deterministic). */
    std::uint64_t seq = 0;
    workload::FunctionId function = workload::kInvalidFunction;
    /** Crash only: restart instant. */
    sim::Tick downUntil = 0;
    /** 0 = crash, 1 = invocation; crashes first at equal ticks. */
    std::uint8_t kind = 1;
    /**
     * Invoke only: root span this delivery chains to (failover
     * re-issue), 0 for fresh arrivals. Span ids embed (node, local
     * seq), so the value is independent of the shard partitioning.
     */
    std::uint64_t originSpan = 0;

    static constexpr std::uint8_t kCrash = 0;
    static constexpr std::uint8_t kInvoke = 1;
};

/**
 * The inbox drain order: (tick, kind, seq). Matches the legacy serial
 * cluster, which processes crashes due at an arrival instant before
 * the arrival itself. The seq tie-break is assigned globally by the
 * coordinator, so the order never depends on the partitioning.
 */
inline bool
shardInputBefore(const ShardInput& a, const ShardInput& b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    return a.seq < b.seq;
}

/** A Cluster stepped by shards between conservative barriers. */
class ShardedCluster
{
  public:
    using PolicyFactory = Cluster::PolicyFactory;

    ShardedCluster(const workload::Catalog& catalog,
                   const PolicyFactory& factory, ClusterConfig config,
                   ShardedConfig sharded = {});

    /** Route and replay @p arrivals to completion on all nodes. */
    ClusterResult run(const std::vector<trace::Arrival>& arrivals);

    /** Effective barrier-grid pitch in ticks. */
    sim::Tick lookahead() const { return _lookahead; }

    /** Effective shard count after clamping. */
    std::size_t shardCount() const { return _shards.size(); }

    /** Worker threads the run will use. */
    std::size_t threadCount() const { return _threads; }

    /** Nodes (for inspection in tests). */
    const std::vector<std::unique_ptr<platform::Node>>& nodes() const
    {
        return _nodes;
    }

    /** Per-node circuit breakers (empty unless the plan arms them). */
    const std::vector<admission::CircuitBreaker>& breakers() const
    {
        return _breakers;
    }

  private:
    /** Work a crash displaced, awaiting re-route at the next barrier. */
    struct FailoverItem
    {
        sim::Tick deliverAt = 0;
        sim::Tick crashAt = 0;
        std::uint32_t fromNode = 0;
        /** Position within the crash's lost list (merge tie-break). */
        std::uint32_t index = 0;
        workload::FunctionId function = workload::kInvalidFunction;
        /** Root span the crash closed (rerouted); chains the retry. */
        std::uint64_t originSpan = 0;
    };

    /** Crash observed inside a shard window (merged sort-once). */
    struct CrashRecord
    {
        sim::Tick at = 0;
        std::uint32_t node = 0;
        sim::Tick downUntil = 0;
        std::uint32_t lost = 0;
    };

    /** Per-shard state; every field is touched only by its shard's
     *  worker during a window and only by the coordinator between
     *  windows (the executor's barrier orders the two). */
    struct Shard
    {
        std::vector<std::size_t> nodes;
        std::vector<CrashRecord> crashLog;
        std::vector<FailoverItem> outbox;
    };

    NodeSummary captureSummary(platform::Node& node) const;
    void runShardWindow(Shard& shard, sim::Tick windowEnd);
    void refreshBreakers(sim::Tick now);

    const workload::Catalog& _catalog;
    ClusterConfig _config;
    ShardedConfig _sharded;
    sim::Tick _lookahead = 0;
    std::size_t _threads = 1;
    ShardScheduler _scheduler;
    std::vector<std::unique_ptr<platform::Node>> _nodes;
    std::vector<admission::CircuitBreaker> _breakers;
    obs::Observer* _obs = nullptr;
    /**
     * Span-only per-node observers (same scheme as Cluster): each
     * node buffers its own spans during the parallel phase — no
     * shared state — and run() merges them into _obs sort-once on
     * partition-independent keys after the drain.
     */
    std::vector<std::unique_ptr<obs::Observer>> _nodeObservers;

    std::vector<Shard> _shards;
    std::vector<NodeSummary> _summaries;
    std::vector<std::vector<ShardInput>> _inboxes; //!< node-indexed

    // Circuit-breaker feeds (coordinator-only).
    std::vector<std::uint64_t> _seenFailures;
    std::vector<std::uint64_t> _seenSuccesses;
    std::vector<std::size_t> _seenTransitions;
};

} // namespace rc::cluster

#endif // RC_CLUSTER_SHARDED_CLUSTER_HH_
