#include "cluster/node_health.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rc::cluster {

namespace {

/** EWMA smoothing factor: ~last 10 completions dominate. */
constexpr double kAlpha = 0.2;

} // namespace

NodeHealthTracker::NodeHealthTracker(Config config, std::size_t nodes)
    : _config(config), _state(nodes, State::Healthy), _ewma(nodes, 0.0),
      _samples(nodes, 0), _quarantinedAt(nodes, 0), _probeStreak(nodes, 0),
      _probeOutstanding(nodes, 0)
{
    if (_config.enabled && _config.probeCount == 0)
        sim::panic("NodeHealthTracker: probeCount must be >= 1");
}

void
NodeHealthTracker::transition(std::size_t node, State to, sim::Tick now)
{
    const State from = _state[node];
    if (from == to)
        return;
    _state[node] = to;
    _transitions.push_back(Transition{
        now, static_cast<std::uint16_t>(node), from, to});
    if (to == State::Quarantined) {
        ++_quarantines;
        _quarantinedAt[node] = now;
    } else if (to == State::Healthy && from == State::Probation) {
        ++_readmits;
        // The degraded-era EWMA must re-earn trust: the node is not
        // judged again until it accumulates fresh samples.
        _samples[node] = 0;
    }
    if (to == State::Probation) {
        _probeStreak[node] = 0;
        _probeOutstanding[node] = 0;
    }
}

void
NodeHealthTracker::recordLatency(std::size_t node, double seconds,
                                 sim::Tick at)
{
    if (!_config.enabled)
        return;
    if (_samples[node] == 0)
        _ewma[node] = seconds;
    else
        _ewma[node] = kAlpha * seconds + (1.0 - kAlpha) * _ewma[node];
    ++_samples[node];

    if (_state[node] == State::Probation && _probeOutstanding[node]) {
        _probeOutstanding[node] = 0;
        const bool healthy =
            _fleetMedian <= 0.0 ||
            seconds < _config.readmitFactor * _fleetMedian;
        if (!healthy) {
            transition(node, State::Quarantined, at);
            return;
        }
        if (++_probeStreak[node] >= _config.probeCount)
            transition(node, State::Healthy, at);
    }
}

void
NodeHealthTracker::refresh(sim::Tick now)
{
    if (!_config.enabled)
        return;

    // Fleet median EWMA over judged nodes. A single node has no peers
    // to be slower than, so judging needs at least two.
    _medianScratch.clear();
    for (std::size_t i = 0; i < _state.size(); ++i) {
        if (_samples[i] >= _config.minSamples)
            _medianScratch.push_back(_ewma[i]);
    }
    if (_medianScratch.size() < 2) {
        _fleetMedian = 0.0;
    } else {
        const std::size_t mid = _medianScratch.size() / 2;
        std::nth_element(_medianScratch.begin(),
                         _medianScratch.begin() + mid,
                         _medianScratch.end());
        _fleetMedian = _medianScratch[mid];
    }

    for (std::size_t i = 0; i < _state.size(); ++i) {
        switch (_state[i]) {
          case State::Healthy:
            if (_fleetMedian > 0.0 &&
                _samples[i] >= _config.minSamples &&
                _ewma[i] > _config.latencyFactor * _fleetMedian) {
                transition(i, State::Quarantined, now);
            }
            break;
          case State::Quarantined:
            if (now >= _quarantinedAt[i] + _config.drain)
                transition(i, State::Probation, now);
            break;
          case State::Probation:
            break;
        }
    }
}

} // namespace rc::cluster
