/**
 * @file
 * A multi-node worker cluster with a shared logical timeline.
 *
 * Each node owns its own event engine; the cluster keeps them
 * synchronized by advancing every node to each arrival instant before
 * routing it, which is exactly the information a real inter-node
 * scheduler would act on (current pool states at arrival time).
 */

#ifndef RC_CLUSTER_CLUSTER_HH_
#define RC_CLUSTER_CLUSTER_HH_

#include <functional>
#include <memory>
#include <vector>

#include "admission/circuit_breaker.hh"
#include "cluster/scheduler.hh"
#include "platform/node.hh"
#include "trace/replay.hh"
#include "workload/catalog.hh"

namespace rc::cluster {

/** Cluster configuration. */
struct ClusterConfig
{
    /** Number of worker nodes. */
    std::size_t nodes = 4;
    /** Per-node configuration (budget divides a cluster total). */
    platform::NodeConfig node;
    /** Routing policy. */
    Scheduling scheduling = Scheduling::LocalityAware;
};

/** Aggregated outcome of a cluster run. */
struct ClusterResult
{
    std::string schedulingName;
    std::uint64_t invocations = 0;
    std::uint64_t coldStarts = 0;
    double totalStartupSeconds = 0.0;
    double meanStartupSeconds = 0.0;
    double totalWasteMbSeconds = 0.0;
    std::size_t strandedInvocations = 0;
    /** Per-node invocation counts (load balance view). */
    std::vector<std::uint64_t> perNodeInvocations;
    /** Node crashes the cluster injected and failed over. */
    std::uint64_t nodeCrashes = 0;
    /** Invocations re-routed off a crashed node (queued + in-flight). */
    std::uint64_t reroutedInvocations = 0;
    /** Invocations that exhausted their retries on some node. */
    std::uint64_t failedInvocations = 0;
    /** Arrivals some node turned away (rc::admission). */
    std::uint64_t rejectedInvocations = 0;
    /** Queued work dropped at its deadline (rc::admission). */
    std::uint64_t shedDeadline = 0;
    /** Work shed at critical pressure (rc::admission). */
    std::uint64_t shedPressure = 0;
    /** Circuit-breaker open transitions across all nodes. */
    std::uint64_t breakerOpens = 0;
    /** Arrivals admitted across all nodes (incl. re-routed work). */
    std::uint64_t admittedInvocations = 0;
    /** Discrete events executed across all node engines. */
    std::uint64_t engineEvents = 0;
    /**
     * Barrier windows the sharded core processed (0 on the legacy
     * serial path). Shard-count independent, so it doubles as a
     * determinism pin in report CSVs.
     */
    std::uint64_t windows = 0;
    /**
     * Fleet end-to-end latency p50/p99 in seconds, from per-node
     * stats::QuantileSketch instances merged in node order (1%
     * relative error; merge-order independent by construction). Not
     * part of the pinned CSV columns — exact percentiles stay where
     * goldens pin them.
     */
    double e2eP50Seconds = 0.0;
    double e2eP99Seconds = 0.0;

    // ---- gray-failure / tail-tolerance (sharded core only) -------------

    /** Invocations cancelled as losing hedge attempts. */
    std::uint64_t cancelledInvocations = 0;
    /** Hedge attempts launched / won / cancelled / lost. The identity
     *  launched == won + cancelled + lost always holds. */
    std::uint64_t hedgesLaunched = 0;
    std::uint64_t hedgesWon = 0;
    std::uint64_t hedgesCancelled = 0;
    std::uint64_t hedgesLost = 0;
    /** Both sides of a hedge pair completed (cancel raced the win). */
    std::uint64_t duplicateCompletions = 0;
    /** Execution seconds burnt by cancelled / duplicate attempts. */
    double wastedExecSeconds = 0.0;
    /** Execution seconds of all completed invocations (waste base). */
    double totalExecSeconds = 0.0;
    /** Latency-quarantine FSM activity. */
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
    std::uint64_t readmits = 0;
    /** Scheduled partitions that started. */
    std::uint64_t partitions = 0;
    /** Messages the gray network delayed / dropped-and-retransmitted. */
    std::uint64_t msgsDelayed = 0;
    std::uint64_t msgsDropped = 0;
    /** Request-level end-to-end p99.9 (hedges merge into requests). */
    double e2eP999Seconds = 0.0;
    /** Primary dispatches routed to a quarantined node (must be 0). */
    std::uint64_t quarantineViolations = 0;

    // ---- correlated domains / recovery (fault::DomainPlan) -------------

    /** Correlated outage waves that struck (whole domains at once). */
    std::uint64_t domainOutages = 0;
    /** Per-node outage episodes (one per node per struck wave). */
    std::uint64_t outageNodeEpisodes = 0;
    /** Planned per-node upgrade drains that started. */
    std::uint64_t upgradeEpisodes = 0;
    /** Drains that emptied gracefully / hit the timeout kill. The
     *  identity drained + killed == upgradeEpisodes always holds. */
    std::uint64_t nodesDrained = 0;
    std::uint64_t nodesKilled = 0;
    /** Episodes brought back to Up (== outage + upgrade episodes). */
    std::uint64_t recoveredNodes = 0;
    /** Total seconds nodes waited for a staged-rejoin token. */
    double rejoinWaitSeconds = 0.0;
    /** Census prewarm layers issued / reused / evicted / wasted. The
     *  identity issued == hit + evicted + wasted always holds. */
    std::uint64_t prewarmLayers = 0;
    std::uint64_t prewarmHit = 0;
    std::uint64_t prewarmEvicted = 0;
    std::uint64_t prewarmWasted = 0;
    /** Memory the wasted prewarms held when they died. */
    double prewarmWastedMb = 0.0;
    /** Client retry-feedback re-submissions dispatched. */
    std::uint64_t retriesFeedback = 0;
    /** Request-level p99 / p99.9 over the recovery window only —
     *  completions at or after the first correlated strike. 0 when no
     *  outage struck. Whole-run quantiles blur every arm into the
     *  common outage-phase pain; these isolate the tail the rejoin
     *  policy actually controls. */
    double recoveryP99Seconds = 0.0;
    double recoveryP999Seconds = 0.0;
    /** Seconds from the first outage until the fleet durably
     *  completes >= 90% of the load clients offer it (trailing
     *  completions/offered ratio over 10 s buckets; every later
     *  bucket holds the floor). 0 when there was no outage or the
     *  ratio never dipped; a run that ends still collapsed reports
     *  the whole remaining window. */
    double timeToGoodputSeconds = 0.0;

    // ---- coordinator phase timing (sharded core, wall clock) -----------
    // Populated only when ShardedConfig::phaseTimings is on. These are
    // host wall-clock measurements — nondeterministic by nature — so,
    // like the e2e percentile fields above, they are never part of the
    // pinned CSV columns.

    /** Total ns spent in the single-threaded coordinator: barrier
     *  scans, routing, pre-binning, and merge phases. */
    std::uint64_t coordinatorDrainNs = 0;
    /** Subset of the above: the merged crash/failover/delivery/
     *  arrival routing drain plus the per-shard bin distribution. */
    std::uint64_t routeNs = 0;
    /** Subset of the above: merging the workers' summary deltas into
     *  the coordinator's summary table. */
    std::uint64_t summaryCaptureNs = 0;
    /** Total ns spent inside parallel shard rounds. */
    std::uint64_t parallelNs = 0;
    /** coordinatorDrainNs / (coordinatorDrainNs + parallelNs): the
     *  measured Amdahl serial fraction of the run. 0 when timing was
     *  off or the run had no windows. */
    double serialFraction = 0.0;
};

/** One pre-drawn node crash (cluster-managed fault injection). */
struct CrashEvent
{
    sim::Tick at = 0;
    std::size_t node = 0;
    sim::Tick downUntil = 0;
};

/**
 * Pre-draw the per-node crash schedule for @p nodes nodes up to
 * @p horizon, exactly as Cluster::run does: one dedicated Rng stream
 * per node derived from @p seed, crashes sorted by (time, node).
 * Pre-drawing keeps the schedule independent of routing noise — and,
 * for the sharded core, independent of the shard partitioning.
 */
std::vector<CrashEvent> drawCrashSchedule(const fault::FaultPlan& plan,
                                          std::uint64_t seed,
                                          std::size_t nodes,
                                          sim::Tick horizon);

/** A set of worker nodes behind one scheduler. */
class Cluster
{
  public:
    using PolicyFactory =
        std::function<std::unique_ptr<policy::Policy>()>;

    /**
     * @param catalog  Deployed functions (shared by all nodes).
     * @param factory  Creates one policy instance per node.
     * @param config   Node count, per-node config, scheduling.
     */
    Cluster(const workload::Catalog& catalog, const PolicyFactory& factory,
            ClusterConfig config);

    /** Route and replay @p arrivals to completion on all nodes. */
    ClusterResult run(const std::vector<trace::Arrival>& arrivals);

    /** Nodes (for inspection in tests). */
    const std::vector<std::unique_ptr<platform::Node>>& nodes() const
    {
        return _nodes;
    }

    /**
     * Per-node circuit breakers (rc::admission); empty unless the
     * admission plan sets breakerFailureThreshold. Exposed so tests
     * and the chaos harness can audit the transition history.
     */
    const std::vector<admission::CircuitBreaker>& breakers() const
    {
        return _breakers;
    }

  private:
    const workload::Catalog& _catalog;
    ClusterConfig _config;
    ClusterScheduler _scheduler;
    std::vector<std::unique_ptr<platform::Node>> _nodes;
    std::vector<admission::CircuitBreaker> _breakers;
    /**
     * Routing-event sink. Taken from ClusterConfig::node.observer;
     * the nodes themselves run uninstrumented (see Cluster ctor for
     * why one Observer cannot span several engine timelines).
     */
    obs::Observer* _obs = nullptr;
    /**
     * Span-only per-node observers, built only when _obs has spans
     * enabled. Span identities are node-stamped and partition
     * independent, so these buffers — unlike events — can be merged
     * into _obs with one sort after the run (Observer::absorbSpans).
     */
    std::vector<std::unique_ptr<obs::Observer>> _nodeObservers;
};

} // namespace rc::cluster

#endif // RC_CLUSTER_CLUSTER_HH_
