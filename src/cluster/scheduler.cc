#include "cluster/scheduler.hh"

#include <limits>

#include "sim/logging.hh"

namespace rc::cluster {

const char*
toString(Scheduling scheduling)
{
    switch (scheduling) {
      case Scheduling::RoundRobin: return "round-robin";
      case Scheduling::LeastLoaded: return "least-loaded";
      case Scheduling::LocalityAware: return "locality-aware";
    }
    return "?";
}

std::size_t
ClusterScheduler::leastLoaded(
    const std::vector<std::unique_ptr<platform::Node>>& nodes,
    const std::vector<std::uint8_t>* tripped) const
{
    // Two passes: prefer healthy nodes; when the whole cluster is
    // down, still place the work (it queues and drains at restart).
    for (const bool healthyOnly : {true, false}) {
        std::size_t best = nodes.size();
        std::size_t bestInFlight = std::numeric_limits<std::size_t>::max();
        double bestMemory = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (healthyOnly && unavailable(nodes, i, tripped))
                continue;
            const std::size_t inFlight =
                nodes[i]->invoker().inFlightInvocations() +
                nodes[i]->invoker().queuedInvocations();
            const double memory = nodes[i]->pool().usedMemoryMb();
            if (inFlight < bestInFlight ||
                (inFlight == bestInFlight && memory < bestMemory)) {
                best = i;
                bestInFlight = inFlight;
                bestMemory = memory;
            }
        }
        if (best != nodes.size())
            return best;
    }
    return 0;
}

std::size_t
ClusterScheduler::pick(
    const std::vector<std::unique_ptr<platform::Node>>& nodes,
    workload::FunctionId function,
    const std::vector<std::uint8_t>* tripped)
{
    if (nodes.empty())
        sim::panic("ClusterScheduler::pick: no nodes");

    switch (_scheduling) {
      case Scheduling::RoundRobin: {
        // Health-aware rotation: skip crashed and breaker-tripped
        // nodes. If every node is unavailable, rotate anyway — the
        // pick queues and drains at restart.
        for (std::size_t tried = 0; tried < nodes.size(); ++tried) {
            const std::size_t i = _cursor++ % nodes.size();
            if (!unavailable(nodes, i, tripped))
                return i;
        }
        return _cursor++ % nodes.size();
      }

      case Scheduling::LeastLoaded:
        return leastLoaded(nodes, tripped);

      case Scheduling::LocalityAware: {
        // 1. Locality: a node holding warm capacity for the function
        //    (an idle full container or an in-flight pre-warm).
        //    Crashed nodes have no pool, but isDown() still guards
        //    the window where a pick races a pending crash.
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!unavailable(nodes, i, tripped) &&
                nodes[i]->pool().userAvailable(function))
                return i;
        }
        // 2. Sharing: the node with the best layer-sharing
        //    opportunity — an idle Lang container of the function's
        //    language beats an idle Bare container. The per-language
        //    availability summary answers in O(1) per node, instead
        //    of probing each pool for an actual container.
        const auto language =
            nodes[0]->catalog().at(function).language();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!unavailable(nodes, i, tripped) &&
                nodes[i]->pool().idleLangCount(language) > 0)
                return i;
        }
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!unavailable(nodes, i, tripped) &&
                nodes[i]->pool().idleBareCount() > 0)
                return i;
        }
        // 3. Load: spread out.
        return leastLoaded(nodes, tripped);
      }
    }
    return 0;
}

} // namespace rc::cluster
