/**
 * @file
 * Multi-node scheduling (§8, "RainbowCake on distributed clusters").
 *
 * The paper sketches an inter-node scheduler built on three factors:
 *   1. Locality — prefer a node holding a fully warmed (User)
 *      container for the function;
 *   2. Sharing — otherwise prefer the node with the best
 *      layer-sharing opportunity (idle Lang of the function's
 *      language, then idle Bare);
 *   3. Load — otherwise distribute to avoid contention.
 *
 * ClusterScheduler implements that policy plus two classic baselines
 * (round-robin and least-loaded) so the benefit of warmth-aware
 * routing is measurable.
 */

#ifndef RC_CLUSTER_SCHEDULER_HH_
#define RC_CLUSTER_SCHEDULER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/node.hh"
#include "workload/types.hh"

namespace rc::cluster {

/** Inter-node routing policies. */
enum class Scheduling : std::uint8_t
{
    RoundRobin,    //!< ignore state; rotate
    LeastLoaded,   //!< fewest in-flight invocations, then least memory
    LocalityAware, //!< §8: locality, then sharing, then load
};

/** Human-readable name. */
const char* toString(Scheduling scheduling);

/** Routes arrivals to worker nodes. */
class ClusterScheduler
{
  public:
    explicit ClusterScheduler(Scheduling scheduling)
        : _scheduling(scheduling)
    {
    }

    /**
     * Pick the node that should serve an invocation of @p function.
     * All nodes have been advanced to the arrival time before the
     * call, so pool states are current. @p tripped, when non-null,
     * marks nodes whose circuit breaker is open (rc::admission): they
     * are treated like crashed nodes and only receive work when the
     * whole cluster is unavailable.
     */
    std::size_t
    pick(const std::vector<std::unique_ptr<platform::Node>>& nodes,
         workload::FunctionId function,
         const std::vector<std::uint8_t>* tripped = nullptr);

    Scheduling scheduling() const { return _scheduling; }

  private:
    /** Node @p i must not receive new work (down or breaker open). */
    static bool
    unavailable(const std::vector<std::unique_ptr<platform::Node>>& nodes,
                std::size_t i, const std::vector<std::uint8_t>* tripped)
    {
        return nodes[i]->isDown() ||
               (tripped != nullptr && (*tripped)[i] != 0);
    }

    std::size_t
    leastLoaded(const std::vector<std::unique_ptr<platform::Node>>& nodes,
                const std::vector<std::uint8_t>* tripped) const;

    Scheduling _scheduling;
    std::size_t _cursor = 0;
};

} // namespace rc::cluster

#endif // RC_CLUSTER_SCHEDULER_HH_
