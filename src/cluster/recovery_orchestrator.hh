/**
 * @file
 * Layer-aware recovery orchestration for correlated failure domains.
 *
 * A correlated outage (fault::DomainPlan) takes a whole failure
 * domain down at once and erases every in-memory layer cache the
 * struck nodes held. Letting the domain rejoin all at once produces a
 * restart storm: a wall of stone-cold nodes absorbs its traffic share
 * at 100% cold-start rate, latency spikes, client retries pile on,
 * and goodput collapses — the metastable failure mode this
 * orchestrator exists to defeat.
 *
 * The orchestrator runs a per-node FSM entirely inside the sharded
 * cluster's single-threaded coordinator phase, so recovery decisions
 * are bit-identical at any --shards:
 *
 *   Up ──(planned drain)──▶ Draining ──(empty | timeout kill)──▶
 *   Down ──(downtime over)──▶ WaitingRejoin ──(rejoin token)──▶
 *   Warming ──(census rebuilt | warmup timeout)──▶ Up
 *
 * Correlated outages skip Draining (the crash is injected through the
 * cluster's crash schedule). Three mechanisms shape the rejoin:
 *
 *  - *Staged rejoin*: a token bucket (rejoinTokensPerSecond) readmits
 *    nodes one at a time instead of all at once, so the fleet absorbs
 *    each cold node's warm-up individually.
 *  - *Layer-census warm-up*: the orchestrator snapshots each node's
 *    live layer census at the instant the episode begins — idle
 *    Bare/Lang pools plus the per-function User working set, busy or
 *    idle — and re-issues those layers as recovery prewarms on
 *    rejoin, most specialized first. The scheduler keeps routing
 *    around the node (NodeSummary::recovering) until the census is
 *    rebuilt, so the first real request lands on a warm node.
 *  - *Recovery backpressure*: while a fraction of the fleet is
 *    unavailable the orchestrator raises an admission pressure floor
 *    on the survivors, shrinking TTLs and suppressing speculative
 *    prewarms exactly when memory is scarcest.
 *
 * The orchestrator never touches node objects: it reads barrier
 * summaries and emits RecoveryActions (crash-on-drain-end, census
 * prewarms) that the cluster converts into shard inputs. Conservation
 * identities (src/cluster/conservation.hh):
 *
 *   recoveredNodes == outageNodeEpisodes + upgradeEpisodes
 *   nodesDrained + nodesKilled == upgradeEpisodes
 *   prewarmLayers == prewarmHit + prewarmEvicted + prewarmWasted
 */

#ifndef RC_CLUSTER_RECOVERY_ORCHESTRATOR_HH_
#define RC_CLUSTER_RECOVERY_ORCHESTRATOR_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/shard_scheduler.hh"
#include "fault/domain_plan.hh"
#include "obs/observer.hh"
#include "sim/time.hh"
#include "workload/catalog.hh"
#include "workload/types.hh"

namespace rc::cluster {

/**
 * Live layer census of one node: the warm capital it holds right now,
 * idle or busy. Snapshotted by the cluster in the single-threaded
 * coordinator phase the moment an episode begins, so it is the
 * *pre-failure* working set — exactly what the node should grow back
 * before taking traffic again. User layers are per owning function
 * (that is the layer a warm start actually needs); Bare/Lang are
 * fungible and counted in bulk.
 */
struct LayerCensus
{
    std::uint32_t bare = 0;
    std::array<std::uint32_t, workload::kLanguageCount> lang{};
    /** Live User containers per owning function, ascending id. */
    std::vector<std::pair<workload::FunctionId, std::uint32_t>> user;
};

/** Coordinator-phase census read for one node (see LayerCensus). */
using CensusSource = std::function<LayerCensus(std::size_t)>;

/** One recovery decision for the cluster to inject as a shard input. */
struct RecoveryAction
{
    enum Kind : std::uint8_t
    {
        /** Restart the node (drain finished or timed out). */
        kCrashNode = 0,
        /** Issue one census prewarm layer on the node. */
        kPrewarm = 1,
    };

    Kind kind = kCrashNode;
    sim::Tick at = 0;
    std::uint32_t node = 0;
    /** kCrashNode: node is down until this tick. */
    sim::Tick downUntil = 0;
    /** kPrewarm: representative function + layer to install. */
    workload::FunctionId function = 0;
    workload::Layer layer = workload::Layer::Bare;
};

/** Coordinator-side recovery FSM for one cluster run. */
class RecoveryOrchestrator
{
  public:
    /**
     * Pre-draws the outage and upgrade schedules for @p nodes nodes
     * up to @p horizon on the plan's dedicated Rng streams. Episodes
     * of one node are made non-overlapping at expansion: a wave that
     * strikes a node still draining, down, or warming from an earlier
     * episode merges into that ongoing episode (its crash is not
     * injected again), so every episode rejoins exactly once.
     */
    RecoveryOrchestrator(const fault::DomainPlan& plan,
                         const workload::Catalog& catalog,
                         std::uint64_t seed, std::size_t nodes,
                         sim::Tick horizon, obs::Observer* obs);

    /** Per-node crash events expanded from the outage schedule, for
     *  merging into the cluster's crash stream (sorted by at, node). */
    const std::vector<CrashEvent>& outageCrashes() const
    {
        return _outageCrashes;
    }

    /** Earliest tick the FSM needs a barrier at (sim::kNever-like
     *  max() when fully idle). */
    sim::Tick nextActionAt() const;

    /** True while some node is Draining or Warming: the run loop must
     *  keep stepping on node events so the FSM observes progress. */
    bool needsNodeProgress() const;

    /**
     * Run every node's FSM at a barrier. @p windowStart is the
     * barrier instant ([windowStart, windowEnd) is the upcoming
     * window); @p summaries are the last-barrier node snapshots —
     * the recovering/down flags are (re)applied here each barrier.
     * @p offered is the cumulative offered load as of windowStart
     * (fresh arrivals plus feedback retries) — the denominator of the
     * goodput ratio. @p census reads a node's live layer census
     * (called only in the window an episode begins; may be empty for
     * tests, which degrades to a summary-only idle census).
     * Crash/prewarm decisions are appended to @p actions. Returns the
     * admission pressure floor the fleet should run at (0-2, from the
     * unavailable fraction).
     */
    int onBarrier(sim::Tick windowStart, sim::Tick windowEnd,
                  std::vector<NodeSummary>& summaries,
                  std::uint64_t offered, const CensusSource& census,
                  std::vector<RecoveryAction>& actions);

    /**
     * End-of-run sweep: finish every in-flight episode (drains count
     * as graceful, pending rejoins are granted with their accrued
     * wait) so the recovery conservation identities close. No
     * prewarms are issued — the nodes are about to finalize.
     */
    void finishPending(sim::Tick now);

    /** Copy the FSM counters into @p result (prewarm pool provenance
     *  and retry feedback are aggregated by the cluster itself). */
    void report(ClusterResult& result) const;

  private:
    enum class NodeState : std::uint8_t
    {
        Up = 0,
        Draining = 1,
        Down = 2,
        WaitingRejoin = 3,
        Warming = 4,
    };

    /** One planned or correlated down-and-rejoin episode. */
    struct Episode
    {
        sim::Tick beginAt = 0; //!< crash instant / drain start
        sim::Tick downFor = 0; //!< downtime once actually down
        bool planned = false;  //!< rolling-upgrade drain
    };

    struct NodeRec
    {
        std::vector<Episode> queue;
        std::size_t next = 0; //!< index of the active/upcoming episode
        NodeState state = NodeState::Up;
        sim::Tick downUntil = 0;
        sim::Tick drainDeadline = 0;
        sim::Tick readyAt = 0;
        sim::Tick warmupDeadline = 0;
        /** Live layer census snapshotted when the episode began. */
        LayerCensus census;
        /** Prewarm layers actually planned at rejoin (census, capped). */
        std::uint32_t plannedBare = 0;
        std::array<std::uint32_t, workload::kLanguageCount> plannedLang{};
        std::uint32_t plannedUser = 0;
        std::uint32_t plannedTotal = 0;
    };

    /** One correlated wave, kept for the DomainOutage event. */
    struct Wave
    {
        sim::Tick at = 0;
        sim::Tick downFor = 0;
        std::uint32_t nodesStruck = 0;
        bool emitted = false;
    };

    void captureCensus(NodeRec& rec, std::size_t node,
                       const NodeSummary& summary,
                       const CensusSource& census) const;
    void beginDown(std::size_t node, sim::Tick at, sim::Tick downFor);
    /** Token grant: plan prewarms and enter Warming (or complete). */
    void grantRejoin(std::size_t node, sim::Tick grantAt,
                     std::vector<RecoveryAction>& actions);
    void complete(std::size_t node, sim::Tick at);
    bool censusMet(const NodeRec& rec, const NodeSummary& summary) const;

    const fault::DomainPlan& _plan;
    obs::Observer* _obs = nullptr;
    std::size_t _nodes = 0;
    std::vector<NodeRec> _recs;
    std::vector<Wave> _waves;
    std::vector<CrashEvent> _outageCrashes;
    /** Nodes waiting for a rejoin token, ordered (readyAt, node). */
    std::vector<std::uint32_t> _rejoinQueue;
    sim::Tick _nextTokenAt = 0;
    sim::Tick _tokenInterval = 0;
    /** Representative function per census layer: first catalog
     *  function (Bare) / first function of each language (Lang). */
    workload::FunctionId _repBare = 0;
    std::array<std::int64_t, workload::kLanguageCount> _repLang{};

    // ---- goodput tracking (10 s buckets) --------------------------------
    // Completions and offered load per bucket; time-to-goodput is the
    // ratio of the two over a trailing window, so bursty arrival
    // processes do not read as goodput collapses.
    std::vector<std::uint64_t> _goodputBuckets;
    std::vector<std::uint64_t> _offeredBuckets;
    std::uint64_t _lastCompleted = 0;
    std::uint64_t _lastOffered = 0;
    sim::Tick _firstOutageAt = 0; //!< 0 = no outage struck
    sim::Tick _lastSampleAt = 0;

    // ---- counters -------------------------------------------------------
    std::uint64_t _domainOutages = 0;
    std::uint64_t _outageNodeEpisodes = 0;
    std::uint64_t _upgradeEpisodes = 0;
    std::uint64_t _nodesDrained = 0;
    std::uint64_t _nodesKilled = 0;
    std::uint64_t _recoveredNodes = 0;
    double _rejoinWaitSeconds = 0.0;
};

} // namespace rc::cluster

#endif // RC_CLUSTER_RECOVERY_ORCHESTRATOR_HH_
