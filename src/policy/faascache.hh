/**
 * @file
 * FaasCache baseline (Fuerst & Sharma, ASPLOS'21).
 *
 * FaasCache treats keep-alive as a caching problem and applies
 * Greedy-Dual-Size-Frequency: idle containers are never terminated
 * by a timer; they are only evicted when a new container needs the
 * memory, in ascending order of priority
 *
 *     priority = clock + frequency * cost / size
 *
 * where cost is the function's cold-start latency, size its container
 * footprint, frequency its observed invocation count, and clock the
 * running eviction clock (raised to the priority of each evicted
 * container, which ages older entries). This yields excellent warm
 * rates but the pool stays full ("no container termination", §7.2),
 * which is where its memory waste comes from.
 */

#ifndef RC_POLICY_FAASCACHE_HH_
#define RC_POLICY_FAASCACHE_HH_

#include <unordered_map>

#include "policy/policy.hh"

namespace rc::policy {

/** Greedy-Dual keep-alive: no TTLs, priority eviction. */
class FaasCachePolicy : public Policy
{
  public:
    FaasCachePolicy() = default;

    std::string name() const override { return "FaaSCache"; }
    void onArrival(workload::FunctionId function) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    IdleDecision onIdleExpired(const container::Container& c) override;
    std::vector<container::ContainerId>
    rankEvictionVictims(
        const std::vector<const container::Container*>& idle) override;

    /** Testing hook: current Greedy-Dual clock. */
    double clock() const { return _clock; }

    /** Testing hook: priority a container would be ranked with. */
    double priorityOf(const container::Container& c) const;

  private:
    double _clock = 0.0;
    std::unordered_map<workload::FunctionId, std::uint64_t> _frequency;
};

} // namespace rc::policy

#endif // RC_POLICY_FAASCACHE_HH_
