#include "policy/pagurus.hh"

#include "sim/logging.hh"

namespace rc::policy {

using workload::Layer;

PagurusPolicy::PagurusPolicy(PagurusConfig config) : _config(config)
{
    if (config.privateTtl <= 0 || config.zygoteTtl <= 0)
        sim::fatal("PagurusPolicy: TTLs must be positive");
    if (config.packedMemoryFraction < 0.0 ||
        config.packedMemoryFraction > 1.0) {
        sim::fatal("PagurusPolicy: packed memory fraction outside [0,1]");
    }
}

void
PagurusPolicy::onArrival(workload::FunctionId function)
{
    _lastArrival[function] = _view->now();
}

sim::Tick
PagurusPolicy::keepAliveTtl(const container::Container& c)
{
    (void)c;
    return _config.privateTtl;
}

std::vector<workload::FunctionId>
PagurusPolicy::selectHelpers(workload::FunctionId owner) const
{
    // Helper candidates: same-language functions ordered by recency
    // of their last invocation (a deterministic stand-in for the
    // paper's weighted sampling — recently active functions are
    // exactly the high-weight ones).
    const auto& catalog = _view->catalog();
    const auto language = catalog.at(owner).language();

    std::vector<std::pair<sim::Tick, workload::FunctionId>> candidates;
    for (const auto& profile : catalog) {
        if (profile.id() == owner || profile.language() != language)
            continue;
        sim::Tick recency = -1;
        if (auto it = _lastArrival.find(profile.id());
            it != _lastArrival.end()) {
            recency = it->second;
        }
        candidates.emplace_back(recency, profile.id());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first)
                      return a.first > b.first; // most recent first
                  return a.second < b.second;
              });

    // The owner itself stays a valid claimant of the zygote (its
    // libraries remain in the image even though its code is wiped).
    std::vector<workload::FunctionId> helpers;
    helpers.push_back(owner);
    for (const auto& [recency, id] : candidates) {
        if (helpers.size() >= _config.maxPacked + 1)
            break;
        if (recency < 0)
            continue; // never invoked: not worth packing
        helpers.push_back(id);
    }
    return helpers;
}

IdleDecision
PagurusPolicy::onIdleExpired(const container::Container& c)
{
    if (c.layer() != Layer::User)
        return IdleDecision::kill();

    if (!c.packedFunctions().empty()) {
        // Zygote lifetime over: terminate.
        return IdleDecision::kill();
    }

    const auto helpers = selectHelpers(c.function());
    if (helpers.empty())
        return IdleDecision::kill();

    // Pack the helpers' user layers (deduplicated) into the image.
    // The owner's own libraries are already part of the container's
    // resident user layer, so only the helpers add memory.
    const auto& catalog = _view->catalog();
    double packedMb = 0.0;
    for (const auto id : helpers) {
        if (id == c.function())
            continue;
        const auto& profile = catalog.at(id);
        const double delta = profile.memoryAtLayer(Layer::User) -
                             profile.memoryAtLayer(Layer::Lang);
        packedMb += delta * _config.packedMemoryFraction;
    }
    return IdleDecision::repack(_config.zygoteTtl, helpers, packedMb);
}

bool
PagurusPolicy::allowForeignUserContainer(
    const container::Container& c, workload::FunctionId function) const
{
    const auto& packed = c.packedFunctions();
    return std::find(packed.begin(), packed.end(), function) != packed.end();
}

sim::Tick
PagurusPolicy::foreignUserStartupLatency(
    const container::Container& c, workload::FunctionId function) const
{
    (void)c;
    const auto& profile = _view->catalog().at(function);
    return _config.specializeBias +
           static_cast<sim::Tick>(
               static_cast<double>(profile.costs().userInit) *
               _config.specializeFraction);
}

} // namespace rc::policy
