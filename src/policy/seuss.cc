#include "policy/seuss.hh"

#include "sim/logging.hh"

namespace rc::policy {

using workload::Layer;

SeussPolicy::SeussPolicy(SeussConfig config) : _config(config)
{
    if (config.userTtl <= 0 || config.langTtl <= 0 || config.bareTtl <= 0)
        sim::fatal("SeussPolicy: TTLs must be positive");
    if (config.restoreFactor < 1.0)
        sim::fatal("SeussPolicy: restore factor below 1 is a speedup");
}

sim::Tick
SeussPolicy::ttlFor(Layer layer) const
{
    switch (layer) {
      case Layer::User: return _config.userTtl;
      case Layer::Lang: return _config.langTtl;
      case Layer::Bare: return _config.bareTtl;
      case Layer::None: break;
    }
    sim::panic("SeussPolicy::ttlFor: bad layer");
}

sim::Tick
SeussPolicy::keepAliveTtl(const container::Container& c)
{
    return ttlFor(c.layer());
}

IdleDecision
SeussPolicy::onIdleExpired(const container::Container& c)
{
    if (c.layer() == Layer::Bare)
        return IdleDecision::kill();
    return IdleDecision::downgrade(ttlFor(workload::layerBelow(c.layer())));
}

} // namespace rc::policy
