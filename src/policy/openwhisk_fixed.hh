/**
 * @file
 * OpenWhisk's default keep-alive baseline.
 *
 * The stock OpenWhisk policy (and, approximately, AWS Lambda /
 * Google Cloud Functions / Azure Functions per §7.1) keeps every
 * idle full container alive for a fixed window — 10 minutes — and
 * then terminates it. No pre-warming, no partial layers, no sharing.
 */

#ifndef RC_POLICY_OPENWHISK_FIXED_HH_
#define RC_POLICY_OPENWHISK_FIXED_HH_

#include "policy/policy.hh"

namespace rc::policy {

/** Fixed keep-alive, full containers only. */
class OpenWhiskFixedPolicy : public Policy
{
  public:
    /** @param keepAlive Fixed idle window (default: 10 minutes). */
    explicit OpenWhiskFixedPolicy(sim::Tick keepAlive = 10 * sim::kMinute);

    std::string name() const override { return "OpenWhisk"; }
    sim::Tick keepAliveTtl(const container::Container& c) override;
    IdleDecision onIdleExpired(const container::Container& c) override;

  private:
    sim::Tick _keepAlive;
};

} // namespace rc::policy

#endif // RC_POLICY_OPENWHISK_FIXED_HH_
