#include "policy/openwhisk_fixed.hh"

#include "sim/logging.hh"

namespace rc::policy {

OpenWhiskFixedPolicy::OpenWhiskFixedPolicy(sim::Tick keepAlive)
    : _keepAlive(keepAlive)
{
    if (keepAlive <= 0)
        sim::fatal("OpenWhiskFixedPolicy: keep-alive must be positive");
}

sim::Tick
OpenWhiskFixedPolicy::keepAliveTtl(const container::Container& c)
{
    (void)c;
    return _keepAlive;
}

IdleDecision
OpenWhiskFixedPolicy::onIdleExpired(const container::Container& c)
{
    (void)c;
    return IdleDecision::kill();
}

} // namespace rc::policy
