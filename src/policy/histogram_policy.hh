/**
 * @file
 * Histogram baseline (Shahrad et al., USENIX ATC'20).
 *
 * The Azure "hybrid histogram" policy tracks, per function, a
 * histogram of inter-arrival times in one-minute bins and derives
 * two windows from it: the pre-warming window (head percentile: the
 * platform may release the container and re-warm it shortly before
 * the next predicted arrival) and the keep-alive window (tail
 * percentile: how long to keep the container after it went idle).
 * When the pattern is not representable (too few samples or too many
 * out-of-bounds IATs) the policy falls back to a fixed keep-alive.
 *
 * Full containers only: no partial layers and no sharing.
 */

#ifndef RC_POLICY_HISTOGRAM_POLICY_HH_
#define RC_POLICY_HISTOGRAM_POLICY_HH_

#include <unordered_map>

#include "policy/policy.hh"
#include "stats/histogram.hh"

namespace rc::policy {

/** Tunables of the histogram policy. */
struct HistogramConfig
{
    /** Histogram range: one-minute bins over four hours. */
    std::size_t bins = 240;
    /** Head percentile driving the pre-warm window. */
    double headQuantile = 0.05;
    /** Tail percentile driving the keep-alive window. */
    double tailQuantile = 0.99;
    /** Safety margin subtracted from the pre-warm point. */
    sim::Tick prewarmMargin = sim::kMinute;
    /** Fallback keep-alive when the pattern is unpredictable. */
    sim::Tick fallbackKeepAlive = 10 * sim::kMinute;
    /**
     * Hybrid release: when the head window is wide enough to rely on
     * pre-warming, the idle container is only kept this long and the
     * scheduled pre-warm re-creates it before the predicted next
     * arrival (the Azure policy's unload/pre-load cycle).
     */
    sim::Tick releasedKeepAlive = 5 * sim::kMinute;
    /** Samples needed before trusting the histogram. */
    std::uint64_t minSamples = 4;
    /** OOB share above which the pattern counts as unpredictable. */
    double maxOobFraction = 0.5;
};

/** Per-function histogram-driven pre-warming and keep-alive. */
class HistogramPolicy : public Policy
{
  public:
    explicit HistogramPolicy(HistogramConfig config = {});

    std::string name() const override { return "Histogram"; }
    void onArrival(workload::FunctionId function) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    IdleDecision onIdleExpired(const container::Container& c) override;

    /** Testing hook: the histogram tracked for @p function. */
    const stats::Histogram* histogramFor(workload::FunctionId f) const;

  private:
    struct FunctionState
    {
        stats::Histogram iatMinutes;
        sim::Tick lastArrival = -1;

        explicit FunctionState(std::size_t bins)
            : iatMinutes(1.0, bins)
        {
        }
    };

    FunctionState& stateFor(workload::FunctionId function);
    bool predictable(const FunctionState& state) const;

    HistogramConfig _config;
    std::unordered_map<workload::FunctionId, FunctionState> _functions;
};

} // namespace rc::policy

#endif // RC_POLICY_HISTOGRAM_POLICY_HH_
