#include "policy/histogram_policy.hh"

#include <algorithm>

namespace rc::policy {

HistogramPolicy::HistogramPolicy(HistogramConfig config) : _config(config) {}

HistogramPolicy::FunctionState&
HistogramPolicy::stateFor(workload::FunctionId function)
{
    auto it = _functions.find(function);
    if (it == _functions.end()) {
        it = _functions.emplace(function, FunctionState(_config.bins)).first;
    }
    return it->second;
}

bool
HistogramPolicy::predictable(const FunctionState& state) const
{
    return state.iatMinutes.count() >= _config.minSamples &&
           state.iatMinutes.oobFraction() <= _config.maxOobFraction;
}

void
HistogramPolicy::onArrival(workload::FunctionId function)
{
    FunctionState& state = stateFor(function);
    const sim::Tick now = _view->now();
    if (state.lastArrival >= 0) {
        const double iatMinutes =
            sim::toSeconds(now - state.lastArrival) / 60.0;
        state.iatMinutes.add(iatMinutes);
    }
    state.lastArrival = now;

    // Pre-warm shortly before the head-percentile IAT elapses, but
    // only when the head window is wide enough that keeping the
    // container the whole time would be wasteful; for tight patterns
    // the keep-alive window alone covers the next arrival.
    if (!predictable(state))
        return;
    const double headMinutes =
        state.iatMinutes.quantileLowerEdge(_config.headQuantile);
    const auto headTicks = static_cast<sim::Tick>(
        headMinutes * 60.0 * static_cast<double>(sim::kSecond));
    if (headTicks > 2 * _config.prewarmMargin) {
        _view->schedulePrewarm(function, headTicks - _config.prewarmMargin);
    }
}

sim::Tick
HistogramPolicy::keepAliveTtl(const container::Container& c)
{
    const auto it = _functions.find(c.function());
    if (it == _functions.end() || !predictable(it->second))
        return _config.fallbackKeepAlive;

    // Hybrid behaviour: when the head of the IAT distribution is far
    // out, keeping the container the whole time is wasteful — the
    // policy releases it early and counts on the pre-warm scheduled
    // at the head window to bring it back just in time.
    const double headMinutes =
        it->second.iatMinutes.quantileLowerEdge(_config.headQuantile);
    const auto headTicks = static_cast<sim::Tick>(
        headMinutes * 60.0 * static_cast<double>(sim::kSecond));
    if (headTicks > 2 * _config.prewarmMargin)
        return _config.releasedKeepAlive;

    const double tailMinutes =
        it->second.iatMinutes.quantileUpperEdge(_config.tailQuantile);
    const auto ttl = static_cast<sim::Tick>(
        tailMinutes * 60.0 * static_cast<double>(sim::kSecond));
    return std::clamp<sim::Tick>(ttl, sim::kMinute,
                                 static_cast<sim::Tick>(_config.bins) *
                                     sim::kMinute);
}

IdleDecision
HistogramPolicy::onIdleExpired(const container::Container& c)
{
    (void)c;
    return IdleDecision::kill();
}

const stats::Histogram*
HistogramPolicy::histogramFor(workload::FunctionId f) const
{
    auto it = _functions.find(f);
    return it == _functions.end() ? nullptr : &it->second.iatMinutes;
}

} // namespace rc::policy
