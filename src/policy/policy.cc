#include "policy/policy.hh"

#include <algorithm>

namespace rc::policy {

std::vector<container::ContainerId>
Policy::rankEvictionVictims(
    const std::vector<const container::Container*>& idle)
{
    // Default eviction: longest idle first (LRU over idle time), with
    // lower layers (cheaper to rebuild) preferred on ties.
    std::vector<const container::Container*> sorted(idle);
    std::sort(sorted.begin(), sorted.end(),
              [](const container::Container* a,
                 const container::Container* b) {
                  if (a->idleSince() != b->idleSince())
                      return a->idleSince() < b->idleSince();
                  return static_cast<int>(a->layer()) <
                         static_cast<int>(b->layer());
              });
    std::vector<container::ContainerId> out;
    out.reserve(sorted.size());
    for (const auto* c : sorted)
        out.push_back(c->id());
    return out;
}

} // namespace rc::policy
