#include "policy/faascache.hh"

#include <algorithm>

namespace rc::policy {

void
FaasCachePolicy::onArrival(workload::FunctionId function)
{
    ++_frequency[function];
}

sim::Tick
FaasCachePolicy::keepAliveTtl(const container::Container& c)
{
    (void)c;
    return -1; // cached until evicted
}

IdleDecision
FaasCachePolicy::onIdleExpired(const container::Container& c)
{
    (void)c;
    // Unreachable in normal operation (no TTLs are scheduled); be
    // conservative if a caller drives it directly.
    return IdleDecision::kill();
}

double
FaasCachePolicy::priorityOf(const container::Container& c) const
{
    const workload::FunctionId f = c.function();
    double freq = 1.0;
    if (auto it = _frequency.find(f); it != _frequency.end())
        freq = static_cast<double>(it->second);
    const auto& profile = _view->catalog().at(
        f != workload::kInvalidFunction ? f : c.initFunction());
    const double costSeconds = sim::toSeconds(profile.coldStartLatency());
    const double sizeMb = std::max(1.0, c.memoryMb());
    return _clock + freq * costSeconds / sizeMb;
}

std::vector<container::ContainerId>
FaasCachePolicy::rankEvictionVictims(
    const std::vector<const container::Container*>& idle)
{
    std::vector<std::pair<double, container::ContainerId>> ranked;
    ranked.reserve(idle.size());
    for (const auto* c : idle)
        ranked.emplace_back(priorityOf(*c), c->id());
    std::sort(ranked.begin(), ranked.end());
    // Advance the clock to the lowest priority: the Greedy-Dual aging
    // step (the head of this list is what the platform evicts first).
    if (!ranked.empty())
        _clock = std::max(_clock, ranked.front().first);
    std::vector<container::ContainerId> out;
    out.reserve(ranked.size());
    for (const auto& [priority, id] : ranked)
        out.push_back(id);
    return out;
}

} // namespace rc::policy
