/**
 * @file
 * SEUSS baseline (Cadden et al., EuroSys'20): partial container
 * caching.
 *
 * SEUSS snapshots function environments at intermediate points of the
 * initialization path and serves invocations from the most-derived
 * cached snapshot, skipping redundant paths. Mapped onto this
 * platform's layer vocabulary: containers are cached layer-wise with
 * *fixed* per-layer windows (no workload modeling, no pre-warming),
 * lower layers are shared across functions, and starting from a
 * cached layer pays a snapshot-restore penalty on the remaining
 * initialization (partial warm starts "fail to match the latency
 * reduction of complete warm-starts", §2.3).
 */

#ifndef RC_POLICY_SEUSS_HH_
#define RC_POLICY_SEUSS_HH_

#include "policy/policy.hh"

namespace rc::policy {

/** Tunables of the SEUSS baseline. */
struct SeussConfig
{
    /** Fixed keep-alive of full (User) containers. */
    sim::Tick userTtl = 6 * sim::kMinute;
    /** Fixed keep-alive at the Lang layer (snapshots are cheap, so
     *  SEUSS caches them aggressively). */
    sim::Tick langTtl = 30 * sim::kMinute;
    /** Fixed keep-alive at the Bare layer. */
    sim::Tick bareTtl = 30 * sim::kMinute;
    /** Multiplier on remaining init when restoring from a snapshot. */
    double restoreFactor = 1.15;
    /** Fixed restore cost added to every partial start. */
    sim::Tick restoreBias = 50 * sim::kMillisecond;
};

/** Fixed-window layer-wise caching with restore penalties. */
class SeussPolicy : public Policy
{
  public:
    explicit SeussPolicy(SeussConfig config = {});

    std::string name() const override { return "SEUSS"; }
    sim::Tick keepAliveTtl(const container::Container& c) override;
    IdleDecision onIdleExpired(const container::Container& c) override;
    bool layerSharingEnabled() const override { return true; }
    double partialStartLatencyFactor() const override
    {
        return _config.restoreFactor;
    }
    sim::Tick partialStartLatencyBias() const override
    {
        return _config.restoreBias;
    }

  private:
    sim::Tick ttlFor(workload::Layer layer) const;

    SeussConfig _config;
};

} // namespace rc::policy

#endif // RC_POLICY_SEUSS_HH_
