/**
 * @file
 * The policy plug-in interface of the platform.
 *
 * A Policy owns exactly the decisions the paper's design space is
 * about (§2.2): when to pre-warm containers, how long to keep idle
 * containers alive, what happens when a keep-alive window expires
 * (terminate vs. peel a layer), whether idle containers may be shared
 * across functions, and which idle containers to evict first under
 * memory pressure. Everything else — stage installs, queueing, memory
 * accounting, metrics — is platform mechanics shared by all policies,
 * so baseline comparisons measure policy differences only.
 *
 * Policies act through a PlatformView, a narrow service interface the
 * invoker implements: scheduling pre-warm events, querying warm
 * availability (the Available() check of Algorithm 1), and reading
 * the clock.
 */

#ifndef RC_POLICY_POLICY_HH_
#define RC_POLICY_POLICY_HH_

#include <string>
#include <vector>

#include "container/container.hh"
#include "obs/observer.hh"
#include "platform/startup_type.hh"
#include "sim/time.hh"
#include "workload/catalog.hh"
#include "workload/types.hh"

namespace rc::policy {

/** What to do with an idle container whose keep-alive TTL expired. */
struct IdleDecision
{
    enum class Action : std::uint8_t
    {
        Kill,      //!< terminate the container
        Downgrade, //!< peel the top layer, keep alive for nextTtl
        Renew,     //!< keep the current layer alive for nextTtl more
        Repack,    //!< convert into a shared zygote (Pagurus)
    };

    Action action = Action::Kill;
    sim::Tick nextTtl = 0;

    /**
     * Kill only: why the policy chose to terminate rather than keep
     * the container — recorded in the trace so eviction breakdowns
     * (Fig. 8 analysis) can distinguish TTL expiry from saturation.
     */
    obs::KillCause killCause = obs::KillCause::TtlExpired;

    /** Repack only: functions the zygote will additionally serve. */
    std::vector<workload::FunctionId> packedFunctions;
    /** Repack only: extra memory of the packed libraries (MB). */
    double packedMemoryMb = 0.0;

    static IdleDecision
    kill(obs::KillCause cause = obs::KillCause::TtlExpired)
    {
        IdleDecision d;
        d.killCause = cause;
        return d;
    }
    static IdleDecision
    downgrade(sim::Tick ttl)
    {
        IdleDecision d;
        d.action = Action::Downgrade;
        d.nextTtl = ttl;
        return d;
    }
    static IdleDecision
    renew(sim::Tick ttl)
    {
        IdleDecision d;
        d.action = Action::Renew;
        d.nextTtl = ttl;
        return d;
    }
    static IdleDecision
    repack(sim::Tick ttl, std::vector<workload::FunctionId> packed,
           double packedMb)
    {
        IdleDecision d;
        d.action = Action::Repack;
        d.nextTtl = ttl;
        d.packedFunctions = std::move(packed);
        d.packedMemoryMb = packedMb;
        return d;
    }
};

/** Services the platform exposes to policies. */
class PlatformView
{
  public:
    virtual ~PlatformView() = default;

    /** Current simulated time. */
    virtual sim::Tick now() const = 0;

    /** The deployed function catalog. */
    virtual const workload::Catalog& catalog() const = 0;

    /**
     * Algorithm 1's Available(): true if an idle or in-flight User
     * container for @p function exists.
     */
    virtual bool
    userContainerAvailable(workload::FunctionId function) const = 0;

    /**
     * Schedule a pre-warm of a User container for @p function after
     * @p delay. The platform performs the Available() check again at
     * fire time and skips the pre-warm if warm capacity exists.
     */
    virtual void schedulePrewarm(workload::FunctionId function,
                                 sim::Tick delay) = 0;

    /** Idle containers currently in the pool (for custom eviction). */
    virtual std::vector<const container::Container*>
    idleContainers() const = 0;

    /**
     * Number of idle containers at @p layer, optionally narrowed to
     * @p language (meaningful for Lang). The platform answers this
     * from its pool indices in O(1); the default derives it from
     * idleContainers() for views that don't override it.
     */
    virtual std::size_t
    idleCountAtLayer(workload::Layer layer,
                     std::optional<workload::Language> language) const
    {
        std::size_t n = 0;
        for (const auto* c : idleContainers()) {
            if (c->layer() != layer)
                continue;
            if (language &&
                (!c->language() || *c->language() != *language))
                continue;
            ++n;
        }
        return n;
    }
};

/** Outcome of one resolved invocation, passed to observation hooks. */
struct StartupObservation
{
    workload::FunctionId function = workload::kInvalidFunction;
    platform::StartupType type = platform::StartupType::Cold;
    sim::Tick startupLatency = 0; //!< arrival to execution start
};

/**
 * Abstract pre-warm & keep-alive policy.
 *
 * Lifetime: attach() is called once before any other hook; hooks are
 * then invoked from platform events in simulated-time order.
 */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Display name used in reports. */
    virtual std::string name() const = 0;

    /** Called once when the policy is installed on a platform. */
    virtual void attach(PlatformView& view) { _view = &view; }

    /**
     * Install the observability sink (may be nullptr). The platform
     * calls this alongside attach(); policies emit PolicyDecision
     * audit events through it when set.
     */
    void setObserver(obs::Observer* obs) { _obs = obs; }

    /** An invocation for @p function arrived (before any lookup). */
    virtual void onArrival(workload::FunctionId function)
    {
        (void)function;
    }

    /** An invocation resolved to a startup type. */
    virtual void onStartupResolved(const StartupObservation& obs)
    {
        (void)obs;
    }

    /**
     * A container was destroyed by an injected fault (init failure,
     * execution crash, wedge timeout) rather than by a keep-alive or
     * eviction decision. Called before the kill, so @p c is intact.
     * Policies that learn from container lifetimes use this to keep
     * failure kills out of their idle-timeout evidence; the default
     * ignores it, which is correct for all stateless baselines.
     */
    virtual void onContainerFailed(const container::Container& c)
    {
        (void)c;
    }

    /**
     * The node crashed and lost its whole pool; it restarts after
     * @p downtime. Called once per crash, before the containers die.
     */
    virtual void onNodeDown(sim::Tick downtime) { (void)downtime; }

    /**
     * rc::admission degradation-ladder level (0 = nominal; see
     * admission::AdmissionController). The platform pushes the level
     * here on every pressure recomputation; pressure-aware policies
     * read it to trade retention for headroom (RainbowCake caches
     * decayed L2/L1 layers instead of full-window L3 containers at
     * level >= 2). Always 0 when no controller is installed.
     */
    void setPressureLevel(int level) { _pressureLevel = level; }
    int pressureLevel() const { return _pressureLevel; }

    /**
     * Keep-alive TTL for a container that just became idle (after
     * execution or after a pre-warm completes). Return a negative
     * value for "no timeout" (FaaSCache keeps containers until
     * evicted).
     */
    virtual sim::Tick keepAliveTtl(const container::Container& c) = 0;

    /** Decision when an idle container's TTL expires. */
    virtual IdleDecision onIdleExpired(const container::Container& c) = 0;

    /**
     * Whether layer-wise sharing lookups (idle Lang/Bare containers)
     * should be attempted for arrivals. Full-container policies
     * return false (their pools never hold partial containers, but
     * the flag also guards against cross-function reuse).
     */
    virtual bool layerSharingEnabled() const { return false; }

    /**
     * Whether a recovery-orchestrated census warm-up may rebuild an
     * idle container at @p layer on this node after a rejoin. Partial
     * (Bare/Lang) prewarms are only useful to policies that dispatch
     * through layer sharing, so the default follows that flag; full-
     * container policies would never claim them and the memory would
     * be pure waste.
     */
    virtual bool acceptsRecoveryPrewarm(workload::Layer layer) const
    {
        (void)layer;
        return layerSharingEnabled();
    }

    /**
     * Whether @p c may serve @p function through a policy-specific
     * sharing path even though its User layer belongs to another
     * function (Pagurus zygotes). Default: no.
     */
    virtual bool
    allowForeignUserContainer(const container::Container& c,
                              workload::FunctionId function) const
    {
        (void)c;
        (void)function;
        return false;
    }

    /**
     * Rank idle containers for eviction under memory pressure; the
     * platform kills them front-to-back until the new container
     * fits. The default orders by longest-idle-first.
     */
    virtual std::vector<container::ContainerId>
    rankEvictionVictims(
        const std::vector<const container::Container*>& idle);

    /**
     * Multiplier applied to remaining init latency when starting
     * from a cached layer (SEUSS-style snapshot restore penalty) and
     * additive restore cost. Default: no penalty.
     */
    virtual double partialStartLatencyFactor() const { return 1.0; }
    virtual sim::Tick partialStartLatencyBias() const { return 0; }

    /**
     * Extra startup latency of serving @p function from a shared
     * foreign User container (zygote specialization cost). Only
     * consulted when allowForeignUserContainer() returned true.
     */
    virtual sim::Tick
    foreignUserStartupLatency(const container::Container& c,
                              workload::FunctionId function) const
    {
        (void)c;
        (void)function;
        return 0;
    }

    /**
     * Whether shared Lang/Bare containers serve partial starts by
     * *forking* (the §8 zygote-template scheme: the template stays
     * resident and each hit clones it copy-on-write) instead of by
     * being consumed and upgraded in place. Forking absorbs
     * concurrent same-language bursts with one template; the clone
     * pays forkLatency and the template keeps its footprint.
     */
    virtual bool forkSharedLayers() const { return false; }

    /** Fork cost when forkSharedLayers() is enabled. */
    virtual sim::Tick forkLatency() const { return 0; }

    /**
     * Multiplier on full cold-start latency; checkpoint-enabled
     * variants (§7.8) restore from snapshots instead of initializing
     * from scratch. Default: 1 (no checkpointing).
     */
    virtual double coldStartFactor() const { return 1.0; }

    /**
     * Auxiliary memory charged per container (checkpoint images held
     * in memory). Default: none.
     */
    virtual double
    auxiliaryMemoryMb(const workload::FunctionProfile& profile) const
    {
        (void)profile;
        return 0.0;
    }

  protected:
    PlatformView* _view = nullptr;
    obs::Observer* _obs = nullptr; //!< optional trace sink, may be null
    int _pressureLevel = 0; //!< rc::admission ladder level (0 = nominal)
};

} // namespace rc::policy

#endif // RC_POLICY_POLICY_HH_
