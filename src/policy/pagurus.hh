/**
 * @file
 * Pagurus baseline (Li et al., USENIX ATC'22): inter-function
 * container sharing.
 *
 * Pagurus recycles idle containers instead of terminating them: when
 * a function's private container has been idle for a window, it is
 * re-packed into a "zygote" container that additionally carries the
 * libraries of a set of helper candidate functions (selected by
 * weighted sampling over recent activity). Any of those functions can
 * then claim the zygote with a cheap specialization instead of a cold
 * start. The price is the over-packed image: zygotes are heavy, which
 * is exactly the memory-waste downside §2.3 and Fig. 8 attribute to
 * container sharing.
 */

#ifndef RC_POLICY_PAGURUS_HH_
#define RC_POLICY_PAGURUS_HH_

#include <algorithm>
#include <unordered_map>

#include "policy/policy.hh"

namespace rc::policy {

/** Tunables of the Pagurus baseline. */
struct PagurusConfig
{
    /**
     * Private keep-alive before re-packing into a zygote (Pagurus
     * recycles containers the platform would otherwise terminate, so
     * this matches the platform's default window).
     */
    sim::Tick privateTtl = 10 * sim::kMinute;
    /** Zygote lifetime after re-packing. */
    sim::Tick zygoteTtl = 4 * sim::kMinute;
    /** Maximum helper functions packed into one zygote. */
    std::size_t maxPacked = 6;
    /**
     * Fraction of each helper's user-layer delta charged to the
     * zygote (shared dependencies dedup some of it).
     */
    double packedMemoryFraction = 0.8;
    /**
     * Fixed specialization latency when a claimant takes a zygote
     * (loading its code package into the pre-packed image).
     */
    sim::Tick specializeBias = 150 * sim::kMillisecond;
    /**
     * Fraction of the claimant's user-init latency paid on claim:
     * libraries are pre-packed but the code package still loads.
     */
    double specializeFraction = 0.55;
};

/** Idle-container recycling via over-packed zygotes. */
class PagurusPolicy : public Policy
{
  public:
    explicit PagurusPolicy(PagurusConfig config = {});

    std::string name() const override { return "Pagurus"; }
    void onArrival(workload::FunctionId function) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    IdleDecision onIdleExpired(const container::Container& c) override;
    bool
    allowForeignUserContainer(const container::Container& c,
                              workload::FunctionId function) const override;
    sim::Tick
    foreignUserStartupLatency(const container::Container& c,
                              workload::FunctionId function) const override;

    /** Testing hook: helper candidates for @p function's zygote. */
    std::vector<workload::FunctionId>
    selectHelpers(workload::FunctionId owner) const;

  private:
    PagurusConfig _config;
    /** Last arrival time per function (recency-weighted selection). */
    std::unordered_map<workload::FunctionId, sim::Tick> _lastArrival;
};

} // namespace rc::policy

#endif // RC_POLICY_PAGURUS_HH_
