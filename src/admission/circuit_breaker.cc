#include "admission/circuit_breaker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rc::admission {

const char*
toString(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half_open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(Config config)
    : _config(config), _buckets(kBuckets)
{
    if (config.window <= 0)
        sim::fatal("CircuitBreaker: window must be positive");
    _bucketWidth = std::max<sim::Tick>(
        1, config.window / static_cast<sim::Tick>(kBuckets));
}

void
CircuitBreaker::transitionTo(State next, sim::Tick now)
{
    if (next == _state)
        return;
    _transitions.push_back(Transition{now, _state, next});
    _state = next;
    if (next == State::Open) {
        _openedAt = now;
        ++_openCount;
    }
    if (next == State::Closed)
        resetWindow();
}

CircuitBreaker::Bucket&
CircuitBreaker::bucketFor(sim::Tick now)
{
    const sim::Tick start = (now / _bucketWidth) * _bucketWidth;
    Bucket& bucket = _buckets[static_cast<std::size_t>(
        (now / _bucketWidth) % static_cast<sim::Tick>(kBuckets))];
    if (bucket.start != start) {
        bucket.start = start;
        bucket.successes = 0;
        bucket.failures = 0;
    }
    return bucket;
}

void
CircuitBreaker::expireOld(sim::Tick now)
{
    const sim::Tick oldest = now - _config.window;
    for (Bucket& bucket : _buckets) {
        if (bucket.start >= 0 && bucket.start + _bucketWidth <= oldest) {
            bucket.start = -1;
            bucket.successes = 0;
            bucket.failures = 0;
        }
    }
}

void
CircuitBreaker::resetWindow()
{
    for (Bucket& bucket : _buckets) {
        bucket.start = -1;
        bucket.successes = 0;
        bucket.failures = 0;
    }
}

double
CircuitBreaker::windowFailureFraction(sim::Tick now)
{
    expireOld(now);
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    for (const Bucket& bucket : _buckets) {
        if (bucket.start < 0)
            continue;
        successes += bucket.successes;
        failures += bucket.failures;
    }
    const std::uint64_t total = successes + failures;
    if (total == 0)
        return 0.0;
    return static_cast<double>(failures) / static_cast<double>(total);
}

void
CircuitBreaker::recordSuccess(sim::Tick now)
{
    if (_state == State::HalfOpen) {
        // The probe came back healthy: close and forget the window
        // (stale failures must not instantly re-trip the breaker).
        transitionTo(State::Closed, now);
        return;
    }
    expireOld(now);
    ++bucketFor(now).successes;
}

void
CircuitBreaker::recordFailure(sim::Tick now)
{
    if (_state == State::HalfOpen) {
        transitionTo(State::Open, now);
        return;
    }
    if (_state == State::Open)
        return; // routed-around nodes can still fail stale work
    expireOld(now);
    ++bucketFor(now).failures;

    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    for (const Bucket& bucket : _buckets) {
        if (bucket.start < 0)
            continue;
        successes += bucket.successes;
        failures += bucket.failures;
    }
    const std::uint64_t total = successes + failures;
    if (total < _config.minSamples)
        return;
    const double fraction =
        static_cast<double>(failures) / static_cast<double>(total);
    if (fraction >= _config.failureThreshold)
        transitionTo(State::Open, now);
}

bool
CircuitBreaker::allows(sim::Tick now)
{
    switch (_state) {
      case State::Closed:
        return true;
      case State::Open:
        if (_openedAt >= 0 && now >= _openedAt + _config.cooloff) {
            transitionTo(State::HalfOpen, now);
            return true; // the probe
        }
        return false;
      case State::HalfOpen:
        return true; // probe outcome pending; let work through
    }
    return true;
}

} // namespace rc::admission
