#include "admission/admission_controller.hh"

#include <algorithm>
#include <cmath>

namespace rc::admission {

AdmissionController::AdmissionController(AdmissionPlan plan) : _plan(plan)
{
}

bool
AdmissionController::tryAdmit(workload::FunctionId f, sim::Tick now)
{
    if (_plan.functionRatePerSecond <= 0.0)
        return true;
    auto [it, fresh] = _buckets.try_emplace(f);
    Bucket& bucket = it->second;
    if (fresh) {
        // A function's first arrival finds a full bucket: the limit
        // constrains sustained rates, not the first burst.
        bucket.tokens = _plan.tokenBucketBurst;
        bucket.lastRefill = now;
    } else {
        const double elapsed = sim::toSeconds(now - bucket.lastRefill);
        bucket.tokens =
            std::min(_plan.tokenBucketBurst,
                     bucket.tokens + elapsed * _plan.functionRatePerSecond);
        bucket.lastRefill = now;
    }
    if (bucket.tokens < 1.0)
        return false;
    bucket.tokens -= 1.0;
    return true;
}

bool
AdmissionController::mayDispatch(workload::FunctionId f) const
{
    if (_plan.functionConcurrencyCap == 0)
        return true;
    const auto it = _inFlight.find(f);
    return it == _inFlight.end() ||
           it->second < _plan.functionConcurrencyCap;
}

void
AdmissionController::onExecStart(workload::FunctionId f)
{
    if (_plan.functionConcurrencyCap == 0)
        return;
    ++_inFlight[f];
}

void
AdmissionController::onExecFinish(workload::FunctionId f)
{
    if (_plan.functionConcurrencyCap == 0)
        return;
    const auto it = _inFlight.find(f);
    if (it != _inFlight.end() && it->second > 0)
        --it->second;
}

int
AdmissionController::updatePressure(const PressureSample& sample,
                                    sim::Tick now)
{
    (void)now;
    const double shedFill =
        std::min(1.0, static_cast<double>(_shedsSinceUpdate) /
                          _plan.queueDepthScale);
    _shedsSinceUpdate = 0;

    double raw = _plan.pressureMemoryWeight * sample.memoryOccupancy +
                 _plan.pressureQueueWeight * sample.queueFill +
                 _plan.pressureShedWeight * shedFill;
    if (sample.overloadWindowOpen)
        raw += _plan.overloadPressureBias;
    raw = std::clamp(raw, 0.0, 1.0);
    _lastRaw = raw;
    _smoothed = _plan.pressureSmoothing * raw +
                (1.0 - _plan.pressureSmoothing) * _smoothed;

    // Map the smoothed signal onto the ladder. Rising is immediate;
    // falling requires clearing the threshold by the hysteresis
    // margin so the level does not flap around a boundary.
    const double thresholds[3] = {_plan.pressureWarn, _plan.pressureHigh,
                                  _plan.pressureCritical};
    int rising = 0;
    while (rising < 3 && _smoothed >= thresholds[rising])
        ++rising;
    if (rising > _level) {
        _level = rising;
    } else if (rising < _level) {
        int falling = _level;
        while (falling > 0 && _smoothed <
                                  thresholds[falling - 1] -
                                      _plan.pressureHysteresis) {
            --falling;
        }
        _level = falling;
    }
    // Report the floored level: policies and the pressure trace see
    // the ladder the node actually runs at, not the measured half.
    return effectiveLevel();
}

sim::Tick
AdmissionController::degradeTtl(sim::Tick ttl) const
{
    if (ttl <= 0 || _level <= 0)
        return ttl;
    const double factor =
        std::pow(_plan.ttlShrinkFactor, static_cast<double>(_level));
    return std::max<sim::Tick>(
        1, static_cast<sim::Tick>(static_cast<double>(ttl) * factor));
}

} // namespace rc::admission
