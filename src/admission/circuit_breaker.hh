/**
 * @file
 * Per-node circuit breaker for the cluster scheduler.
 *
 * The breaker watches one node's invocation outcomes over a rolling
 * bucketed window and implements the classic three-state FSM:
 *
 *          failure fraction >= threshold
 *          (with >= minSamples observed)
 *   Closed ------------------------------> Open
 *     ^                                      |
 *     | success on the probe                 | cooloff elapsed
 *     |                                      v
 *     +----------------------------------- HalfOpen
 *                    failure on the probe -> Open (again)
 *
 * While Open, the cluster scheduler routes around the node exactly as
 * it routes around crashed nodes; after the cooloff one probe
 * invocation is let through (HalfOpen) and its outcome decides
 * between closing and re-opening. The breaker is pure arithmetic over
 * simulated time — no randomness — and it keeps its full transition
 * history so chaos_check can assert every observed sequence is legal.
 */

#ifndef RC_ADMISSION_CIRCUIT_BREAKER_HH_
#define RC_ADMISSION_CIRCUIT_BREAKER_HH_

#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace rc::admission {

/** One node's rolling-window failure tracker and breaker FSM. */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t { Closed, Open, HalfOpen };

    struct Config
    {
        /** Failure fraction over the window that trips the breaker. */
        double failureThreshold = 0.5;
        /** Rolling observation window. */
        sim::Tick window = 60 * sim::kSecond;
        /** Open -> half-open probe delay. */
        sim::Tick cooloff = 30 * sim::kSecond;
        /** Minimum window samples before the breaker may trip. */
        std::uint32_t minSamples = 20;
    };

    /** A recorded state change (chaos_check legality evidence). */
    struct Transition
    {
        sim::Tick at = 0;
        State from = State::Closed;
        State to = State::Closed;
    };

    explicit CircuitBreaker(Config config);

    /** The node served an invocation to completion. */
    void recordSuccess(sim::Tick now);

    /** The node failed an invocation (retries exhausted). */
    void recordFailure(sim::Tick now);

    /**
     * May the scheduler route to this node right now? Not const: an
     * Open breaker whose cooloff has elapsed transitions to HalfOpen
     * here and admits the probe.
     */
    bool allows(sim::Tick now);

    State state() const { return _state; }

    /** Times the breaker entered Open (feeds breaker_open_total). */
    std::uint64_t openCount() const { return _openCount; }

    /** Full transition history, in time order. */
    const std::vector<Transition>& transitions() const
    {
        return _transitions;
    }

    /** Failure fraction over the current window (diagnostics). */
    double windowFailureFraction(sim::Tick now);

  private:
    /** Bucketed window slot. */
    struct Bucket
    {
        sim::Tick start = -1;
        std::uint32_t successes = 0;
        std::uint32_t failures = 0;
    };

    void transitionTo(State next, sim::Tick now);
    Bucket& bucketFor(sim::Tick now);
    void expireOld(sim::Tick now);
    void resetWindow();

    Config _config;
    State _state = State::Closed;
    sim::Tick _openedAt = -1;
    std::uint64_t _openCount = 0;
    std::vector<Transition> _transitions;

    /** Rolling window as a small ring of time buckets. */
    static constexpr std::size_t kBuckets = 8;
    sim::Tick _bucketWidth = 0;
    std::vector<Bucket> _buckets;
};

/** Stable names for reports and traces. */
const char* toString(CircuitBreaker::State state);

} // namespace rc::admission

#endif // RC_ADMISSION_CIRCUIT_BREAKER_HH_
