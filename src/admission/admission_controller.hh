/**
 * @file
 * AdmissionController: the stateful half of rc::admission.
 *
 * One controller per worker node, installed into the Invoker the same
 * way a FaultInjector is (non-owning pointer; nullptr = no overload
 * control at all, the default). It owns:
 *
 *  * per-function token buckets (lazy refill — deterministic, no
 *    events, no randomness) for the arrival rate limit;
 *  * per-function in-flight execution counts for the concurrency cap;
 *  * the smoothed PressureSignal and the degradation-ladder level.
 *
 * The pressure signal mixes pool memory occupancy, admission-queue
 * fill, and the recent shed/reject rate (plus a bias while an
 * injected rc::fault overload window is open, so injected overload
 * shows up as pressure instead of bypassing the controller), smooths
 * it with an EWMA, and maps it onto four ladder levels:
 *
 *   level 0 (nominal)   full RainbowCake behaviour;
 *   level 1 (warn)      keep-alive TTLs shrink by ttlShrinkFactor —
 *                       idle layers decay sooner, memory drains;
 *   level 2 (high)      pre-warming stops, speculative pre-warms are
 *                       shed first under memory pressure, and the
 *                       policy caches decayed L2/L1 layers instead of
 *                       granting full-window L3 containers;
 *   level 3 (critical)  arrivals that cannot bind immediately are
 *                       shed (shed_pressure) instead of queued.
 *
 * Levels drop with hysteresis so the ladder does not flap around a
 * threshold. Everything here is pure arithmetic over simulated time:
 * admission-controlled runs stay bit-deterministic.
 */

#ifndef RC_ADMISSION_ADMISSION_CONTROLLER_HH_
#define RC_ADMISSION_ADMISSION_CONTROLLER_HH_

#include <cstdint>
#include <unordered_map>

#include "admission/admission_plan.hh"
#include "sim/time.hh"
#include "workload/types.hh"

namespace rc::admission {

/** Inputs of one pressure recomputation (see updatePressure). */
struct PressureSample
{
    /** Pool memory occupancy in [0, 1]. */
    double memoryOccupancy = 0.0;
    /** Admission-queue fill in [0, 1] (depth / bound-or-scale). */
    double queueFill = 0.0;
    /** True while an injected overload window is open. */
    bool overloadWindowOpen = false;
};

/** Per-node overload-control state machine. */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionPlan plan);

    const AdmissionPlan& plan() const { return _plan; }

    // ---- token-bucket rate limit ----------------------------------------

    /**
     * Charge one token for an arrival of @p f at @p now. False means
     * the bucket is empty and the arrival must be rejected. Buckets
     * refill lazily at functionRatePerSecond up to tokenBucketBurst.
     * Always true when the rate limit is disabled.
     */
    bool tryAdmit(workload::FunctionId f, sim::Tick now);

    // ---- concurrency cap -------------------------------------------------

    /** May another execution of @p f start right now? */
    bool mayDispatch(workload::FunctionId f) const;

    /** An execution of @p f started / finished (any outcome). */
    void onExecStart(workload::FunctionId f);
    void onExecFinish(workload::FunctionId f);

    /** Node crash: every tracked execution died with the pool. */
    void resetInFlight() { _inFlight.clear(); }

    // ---- pressure signal and ladder ---------------------------------------

    /**
     * Recompute the smoothed pressure and ladder level from @p sample
     * (called by the invoker's controller tick). Returns the new
     * level; pressureLevel()/smoothedPressure() expose it between
     * ticks.
     */
    int updatePressure(const PressureSample& sample, sim::Tick now);

    int pressureLevel() const { return effectiveLevel(); }
    double smoothedPressure() const { return _smoothed; }
    double lastRawPressure() const { return _lastRaw; }

    /** Ladder stage queries the invoker consults on its hot paths. */
    bool shrinkTtls() const { return effectiveLevel() >= 1; }
    bool prewarmsSuppressed() const { return effectiveLevel() >= 2; }
    bool shedInsteadOfQueue() const { return effectiveLevel() >= 3; }

    /**
     * Recovery backpressure: pin the ladder at least at @p level while
     * part of the fleet is down or warming (the cluster recovery
     * orchestrator sets this from the unavailable-node fraction, and
     * clears it back to 0 once the fleet is whole). The measured
     * signal still raises the level above the floor; the floor only
     * stops the survivors from speculating while they carry the
     * displaced load. 0 without an orchestrator, so admission-only
     * runs are untouched.
     */
    void setRecoveryFloor(int level) { _recoveryFloor = level; }
    int recoveryFloor() const { return _recoveryFloor; }

    /**
     * Stage 1: shrink a keep-alive TTL by ttlShrinkFactor per ladder
     * level. Negative TTLs ("keep forever") and level 0 pass through
     * untouched.
     */
    sim::Tick degradeTtl(sim::Tick ttl) const;

    /**
     * A shed/reject happened; feeds the shed component of the next
     * raw pressure sample (the counter resets at each update).
     */
    void noteShedForPressure() { ++_shedsSinceUpdate; }

  private:
    /** Measured ladder level, clamped from below by the recovery floor. */
    int effectiveLevel() const
    {
        return _level > _recoveryFloor ? _level : _recoveryFloor;
    }

    /** Lazy-refill token bucket. */
    struct Bucket
    {
        double tokens = 0.0;
        sim::Tick lastRefill = 0;
    };

    AdmissionPlan _plan;
    std::unordered_map<workload::FunctionId, Bucket> _buckets;
    std::unordered_map<workload::FunctionId, std::uint32_t> _inFlight;

    double _smoothed = 0.0;
    double _lastRaw = 0.0;
    int _level = 0;
    int _recoveryFloor = 0;
    std::uint64_t _shedsSinceUpdate = 0;
};

} // namespace rc::admission

#endif // RC_ADMISSION_ADMISSION_CONTROLLER_HH_
