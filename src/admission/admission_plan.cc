#include "admission/admission_plan.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.hh"

namespace rc::admission {

bool
AdmissionPlan::active() const
{
    return functionRatePerSecond > 0.0 || functionConcurrencyCap > 0 ||
           maxQueueDepth > 0 || queueDeadlineSeconds > 0.0 ||
           breakerFailureThreshold > 0.0 || pressureControlEnabled;
}

namespace {

/** One knob of the flat JSON schema. */
struct Knob
{
    const char* key;
    enum class Kind : std::uint8_t { Frac, Seconds, Count, Flag };
    Kind kind;
    void* target;
};

bool
applyKnob(const Knob& knob, const obs::JsonValue& value,
          std::string* error)
{
    const auto fail = [&](const std::string& what) {
        if (error != nullptr)
            *error = std::string(knob.key) + ": " + what;
        return false;
    };
    if (knob.kind == Knob::Kind::Flag) {
        if (value.kind != obs::JsonValue::Kind::Bool)
            return fail("expected a boolean");
        *static_cast<bool*>(knob.target) = value.boolean;
        return true;
    }
    if (!value.isNumber())
        return fail("expected a number");
    const double v = value.number;
    switch (knob.kind) {
      case Knob::Kind::Frac:
        if (v < 0.0 || v > 1.0)
            return fail("must be in [0, 1]");
        *static_cast<double*>(knob.target) = v;
        return true;
      case Knob::Kind::Seconds:
        if (v < 0.0)
            return fail("must be non-negative");
        *static_cast<double*>(knob.target) = v;
        return true;
      case Knob::Kind::Count:
        if (v < 0.0 || v != std::floor(v))
            return fail("must be a non-negative integer");
        *static_cast<std::uint32_t*>(knob.target) =
            static_cast<std::uint32_t>(v);
        return true;
      case Knob::Kind::Flag:
        break;
    }
    return fail("bad knob kind");
}

} // namespace

bool
parseAdmissionPlan(const std::string& text, AdmissionPlan& out,
                   std::string* error)
{
    obs::JsonValue root;
    if (!obs::parseJson(text, root, error))
        return false;
    if (!root.isObject()) {
        if (error != nullptr)
            *error = "admission plan must be a JSON object";
        return false;
    }

    AdmissionPlan plan;
    const Knob knobs[] = {
        {"function_rate_per_second", Knob::Kind::Seconds,
         &plan.functionRatePerSecond},
        {"token_bucket_burst", Knob::Kind::Seconds,
         &plan.tokenBucketBurst},
        {"function_concurrency_cap", Knob::Kind::Count,
         &plan.functionConcurrencyCap},
        {"max_queue_depth", Knob::Kind::Count, &plan.maxQueueDepth},
        {"queue_deadline_seconds", Knob::Kind::Seconds,
         &plan.queueDeadlineSeconds},
        {"breaker_failure_threshold", Knob::Kind::Frac,
         &plan.breakerFailureThreshold},
        {"breaker_window_seconds", Knob::Kind::Seconds,
         &plan.breakerWindowSeconds},
        {"breaker_cooloff_seconds", Knob::Kind::Seconds,
         &plan.breakerCooloffSeconds},
        {"breaker_min_samples", Knob::Kind::Count,
         &plan.breakerMinSamples},
        {"pressure_control_enabled", Knob::Kind::Flag,
         &plan.pressureControlEnabled},
        {"controller_interval_seconds", Knob::Kind::Seconds,
         &plan.controllerIntervalSeconds},
        {"pressure_smoothing", Knob::Kind::Frac,
         &plan.pressureSmoothing},
        {"pressure_warn", Knob::Kind::Frac, &plan.pressureWarn},
        {"pressure_high", Knob::Kind::Frac, &plan.pressureHigh},
        {"pressure_critical", Knob::Kind::Frac, &plan.pressureCritical},
        {"pressure_hysteresis", Knob::Kind::Frac,
         &plan.pressureHysteresis},
        {"ttl_shrink_factor", Knob::Kind::Frac, &plan.ttlShrinkFactor},
        {"overload_pressure_bias", Knob::Kind::Seconds,
         &plan.overloadPressureBias},
        {"pressure_memory_weight", Knob::Kind::Frac,
         &plan.pressureMemoryWeight},
        {"pressure_queue_weight", Knob::Kind::Frac,
         &plan.pressureQueueWeight},
        {"pressure_shed_weight", Knob::Kind::Frac,
         &plan.pressureShedWeight},
        {"queue_depth_scale", Knob::Kind::Seconds,
         &plan.queueDepthScale},
    };

    for (const auto& [key, value] : root.object) {
        bool known = false;
        for (const Knob& knob : knobs) {
            if (key == knob.key) {
                known = true;
                if (!applyKnob(knob, value, error))
                    return false;
                break;
            }
        }
        if (!known) {
            if (error != nullptr)
                *error = "unknown admission-plan key '" + key + "'";
            return false;
        }
    }
    const auto reject = [&](const char* what) {
        if (error != nullptr)
            *error = what;
        return false;
    };
    if (plan.tokenBucketBurst < 1.0)
        return reject("token_bucket_burst: must be >= 1");
    if (plan.pressureSmoothing <= 0.0)
        return reject("pressure_smoothing: must be positive");
    if (plan.ttlShrinkFactor <= 0.0)
        return reject("ttl_shrink_factor: must be positive");
    if (plan.queueDepthScale <= 0.0)
        return reject("queue_depth_scale: must be positive");
    if (!(plan.pressureWarn < plan.pressureHigh &&
          plan.pressureHigh < plan.pressureCritical)) {
        return reject("pressure thresholds must satisfy "
                      "warn < high < critical");
    }
    if (plan.breakerFailureThreshold > 0.0 &&
        plan.breakerWindowSeconds <= 0.0) {
        return reject("breaker_window_seconds: must be positive when "
                      "breakers are enabled");
    }
    if (plan.pressureControlEnabled &&
        plan.controllerIntervalSeconds <= 0.0) {
        return reject("controller_interval_seconds: must be positive "
                      "when pressure control is enabled");
    }
    out = plan;
    return true;
}

bool
loadAdmissionPlanFile(const std::string& path, AdmissionPlan& out,
                      std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseAdmissionPlan(buffer.str(), out, error);
}

} // namespace rc::admission
