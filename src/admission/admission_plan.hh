/**
 * @file
 * AdmissionPlan: the pure configuration half of rc::admission.
 *
 * A plan describes how the platform defends itself under sustained
 * overload: per-function token-bucket rate limits and concurrency
 * caps, a bounded admission queue with deadline-based shedding, the
 * cluster circuit breaker, and the pressure-driven degradation ladder
 * (see src/admission/admission_controller.hh for the ladder stages).
 *
 * Every knob defaults to "off", so a default-constructed plan is
 * inert: installing it builds no controller, schedules no events, and
 * keeps runs bit-identical to an uninstrumented platform. That is the
 * same pay-for-what-you-use contract rc::fault established, and the
 * zero-knob CI diff pins it for --admission-plan exactly as it does
 * for --fault-plan.
 *
 * Plans load from flat snake_case JSON (rainbow_sim --admission-plan):
 *
 *   {"max_queue_depth": 256, "queue_deadline_seconds": 30,
 *    "pressure_control_enabled": true}
 *
 * Unlike FaultPlan, an admission plan draws no randomness at all:
 * token buckets, EWMA smoothing, and breaker windows are pure
 * arithmetic over simulated time, so admission-controlled runs are
 * deterministic by construction.
 */

#ifndef RC_ADMISSION_ADMISSION_PLAN_HH_
#define RC_ADMISSION_ADMISSION_PLAN_HH_

#include <cstdint>
#include <string>

#include "sim/time.hh"

namespace rc::admission {

/** All overload-control knobs. Pure data. */
struct AdmissionPlan
{
    // ---- per-function token-bucket rate limit ---------------------------
    /** Sustained admissions per second per function; 0 disables. */
    double functionRatePerSecond = 0.0;
    /** Bucket capacity (burst tolerance) in tokens (>= 1). */
    double tokenBucketBurst = 8.0;

    // ---- per-function concurrency cap -----------------------------------
    /** Max concurrent executions per function; 0 disables. */
    std::uint32_t functionConcurrencyCap = 0;

    // ---- bounded admission queue ----------------------------------------
    /** Max queued invocations; 0 = unbounded (the legacy behaviour). */
    std::uint32_t maxQueueDepth = 0;
    /**
     * Deadline-based shedding: queued work still unbound after this
     * long is dropped (shed_deadline) instead of executing uselessly
     * late. 0 disables.
     */
    double queueDeadlineSeconds = 0.0;

    // ---- per-node circuit breaker (cluster scheduler) -------------------
    /**
     * Failure fraction over the rolling window that trips the breaker
     * open; 0 disables breakers entirely.
     */
    double breakerFailureThreshold = 0.0;
    /** Rolling observation window. */
    double breakerWindowSeconds = 60.0;
    /** Open -> half-open probe delay. */
    double breakerCooloffSeconds = 30.0;
    /** Minimum samples in the window before the breaker may trip. */
    std::uint32_t breakerMinSamples = 20;

    // ---- pressure signal and degradation ladder -------------------------
    /** Master switch for the closed-loop pressure controller. */
    bool pressureControlEnabled = false;
    /** Controller recomputation period. */
    double controllerIntervalSeconds = 10.0;
    /** EWMA weight of the newest raw sample (0 < alpha <= 1). */
    double pressureSmoothing = 0.5;
    /** Ladder thresholds on the smoothed signal (warn < high < crit). */
    double pressureWarn = 0.55;
    double pressureHigh = 0.75;
    double pressureCritical = 0.9;
    /** A level is only left when pressure falls this far below it. */
    double pressureHysteresis = 0.05;
    /** Stage-1 keep-alive shrink factor per ladder level (0 < f <= 1). */
    double ttlShrinkFactor = 0.5;
    /** Extra raw pressure while an injected overload window is open. */
    double overloadPressureBias = 0.5;
    /** Raw-signal mix: pool memory occupancy weight. */
    double pressureMemoryWeight = 0.6;
    /** Raw-signal mix: queue-fill weight. */
    double pressureQueueWeight = 0.3;
    /** Raw-signal mix: recent-shed weight. */
    double pressureShedWeight = 0.1;
    /**
     * Queue depth (and recent sheds per interval) that count as
     * "full" when no explicit maxQueueDepth bounds the queue.
     */
    double queueDepthScale = 64.0;

    /**
     * True when any admission mechanism is engaged. The platform only
     * builds a controller (and only then pays any bookkeeping or
     * extra events) for active plans.
     */
    bool active() const;
};

/**
 * Parse a plan from flat snake_case JSON text. Unknown keys fail (a
 * typoed knob silently running unprotected would be worse). Returns
 * false and sets @p error on malformed input.
 */
bool parseAdmissionPlan(const std::string& text, AdmissionPlan& out,
                        std::string* error = nullptr);

/** Load a plan from a JSON file via parseAdmissionPlan. */
bool loadAdmissionPlanFile(const std::string& path, AdmissionPlan& out,
                           std::string* error = nullptr);

} // namespace rc::admission

#endif // RC_ADMISSION_ADMISSION_PLAN_HH_
