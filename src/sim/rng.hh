/**
 * @file
 * Random number generation for workload synthesis.
 *
 * A single seeded Rng instance is the source of all randomness in a
 * simulation run, which makes runs reproducible. The distribution
 * helpers cover everything the trace generator and workload models
 * need: exponential inter-arrival times, Poisson counts, lognormal
 * execution times, Zipf popularity skew, and a two-state
 * Markov-modulated Poisson process (MMPP) used to synthesize bursty
 * Azure-like traces with a controllable coefficient of variation.
 */

#ifndef RC_SIM_RNG_HH_
#define RC_SIM_RNG_HH_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace rc::sim {

/** Deterministic, seedable random source with distribution helpers. */
class Rng
{
  public:
    /** @param seed Seed for the underlying 64-bit Mersenne twister. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
        : _gen(seed), _seed(seed)
    {
    }

    /** Seed this instance was constructed with. */
    std::uint64_t seed() const { return _seed; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /** Exponential variate with rate @p lambda (> 0). */
    double exponential(double lambda);

    /** Poisson count with mean @p mean (>= 0). */
    std::int64_t poisson(double mean);

    /** Normal variate. */
    double normal(double mean, double stddev);

    /**
     * Lognormal variate parameterized by the *target* mean and
     * coefficient of variation of the resulting distribution (not the
     * underlying normal), which is the natural way to express
     * execution-time models.
     */
    double lognormalMeanCv(double mean, double cv);

    /**
     * Sample an index in [0, n) from a Zipf distribution with skew
     * @p s. Used to assign trace popularity ranks to functions.
     */
    std::size_t zipf(std::size_t n, double s);

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        std::shuffle(v.begin(), v.end(), _gen);
    }

    /** Access the raw engine (for std distributions in tests). */
    std::mt19937_64& engine() { return _gen; }

    /** Derive an independent child stream; deterministic per index. */
    Rng fork(std::uint64_t streamIndex) const;

    /**
     * Derive an independent named sub-stream ("fault", "trace", …).
     * Unlike fork(), the derivation uses only the construction seed —
     * never the generator state — so taking a stream cannot perturb
     * the sequence this instance produces, and the same (seed, name)
     * pair always yields the same stream no matter how many draws
     * happened before.
     */
    Rng stream(std::string_view name) const;

  private:
    std::mt19937_64 _gen;
    std::uint64_t _seed = 0;
};

} // namespace rc::sim

#endif // RC_SIM_RNG_HH_
