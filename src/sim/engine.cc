#include "sim/engine.hh"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace rc::sim {

// ---------------------------------------------------------------------------
// Slot and bucket pools

std::uint32_t
Engine::acquireSlot(InplaceCallback&& cb)
{
    if (_freeSlots.empty()) {
        const auto slot = static_cast<std::uint32_t>(_cbs.size());
        _cbs.push_back(std::move(cb));
        _events.emplace_back();
        return slot;
    }
    const std::uint32_t slot = _freeSlots.back();
    _freeSlots.pop_back();
    _cbs[slot] = std::move(cb);
    return slot;
}

void
Engine::releaseSlot(std::uint32_t slot)
{
    _cbs[slot].reset();
    EventMeta& ev = _events[slot];
    ev.bucket = kNil;
    ++ev.generation;
    _freeSlots.push_back(slot);
}

std::uint32_t
Engine::acquireBucket(Tick when, std::uint32_t slot)
{
    if (_freeBuckets.empty()) {
        const auto bucket = static_cast<std::uint32_t>(_buckets.size());
        _buckets.push_back(Bucket{when, slot, slot, 0});
        return bucket;
    }
    const std::uint32_t bucket = _freeBuckets.back();
    _freeBuckets.pop_back();
    _buckets[bucket] = Bucket{when, slot, slot, 0};
    return bucket;
}

void
Engine::releaseBucket(std::uint32_t bucket)
{
    _freeBuckets.push_back(bucket);
}

// ---------------------------------------------------------------------------
// Tick -> bucket map (linear probing, backward-shift deletion)

std::size_t
Engine::hashTick(Tick when)
{
    // splitmix64 finisher: ticks are often multiples of large powers
    // of ten (second/minute boundaries), so low bits need mixing.
    auto x = static_cast<std::uint64_t>(when);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
}

void
Engine::mapGrow()
{
    // Grow 4x from a 1k floor: fewer rehash passes (each pass zeroes
    // and re-places the whole table) at a bounded memory premium.
    const std::size_t newSize = _map.empty() ? 1024 : _map.size() * 4;
    std::vector<MapEntry> old = std::move(_map);
    _map.assign(newSize, MapEntry{});
    const std::size_t mask = newSize - 1;
    for (const MapEntry& entry : old) {
        if (entry.key == kEmptyKey)
            continue;
        std::size_t i = entry.hash & mask;
        while (_map[i].key != kEmptyKey)
            i = (i + 1) & mask;
        _map[i] = entry;
        _buckets[entry.value].mapIndex = static_cast<std::uint32_t>(i);
    }
}

void
Engine::mapEraseAt(std::size_t hole)
{
    const std::size_t mask = _map.size() - 1;
    // Backward-shift deletion keeps probe chains tombstone-free: any
    // entry probing past the hole is pulled back into it.
    std::size_t i = hole;
    for (;;) {
        i = (i + 1) & mask;
        if (_map[i].key == kEmptyKey)
            break;
        const std::size_t ideal = _map[i].hash & mask;
        if (((i - ideal) & mask) >= ((i - hole) & mask)) {
            _map[hole] = _map[i];
            _buckets[_map[i].value].mapIndex =
                static_cast<std::uint32_t>(hole);
            hole = i;
        }
    }
    _map[hole].key = kEmptyKey;
    --_mapLive;
}

// ---------------------------------------------------------------------------
// Indexed 4-ary heap of buckets

void
Engine::siftUp(std::size_t pos, HeapNode node)
{
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / 4;
        if (!before(node, _heap[parent]))
            break;
        _heap[pos] = _heap[parent];
        pos = parent;
    }
    _heap[pos] = node;
}

void
Engine::siftDown(std::size_t pos, HeapNode node)
{
    const std::size_t size = _heap.size();
    for (;;) {
        const std::size_t first = 4 * pos + 1;
        if (first >= size)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, size);
        for (std::size_t child = first + 1; child < last; ++child) {
            if (before(_heap[child], _heap[best]))
                best = child;
        }
        if (!before(_heap[best], node))
            break;
        _heap[pos] = _heap[best];
        pos = best;
    }
    _heap[pos] = node;
}

void
Engine::popFront()
{
    const HeapNode moved = _heap.back();
    _heap.pop_back();
    if (!_heap.empty())
        siftDown(0, moved);
}

// ---------------------------------------------------------------------------
// Public API

EventId
Engine::schedule(Tick when, Callback cb)
{
    if (when < _now) {
        throw std::invalid_argument(
            "Engine::schedule: event time is in the past");
    }
    const std::uint32_t slot = acquireSlot(std::move(cb));
    EventMeta& ev = _events[slot];
    ev.next = kNil;

    // Grow before probing (load factor 1/2: short clusters, cheap
    // backward-shift erases) so one probe serves both lookup and
    // insert.
    if (_map.empty() || (_mapLive + 1) * 2 > _map.size())
        mapGrow();
    const std::size_t mask = _map.size() - 1;
    const auto hash = static_cast<std::uint32_t>(hashTick(when));
    std::size_t i = hash & mask;
    while (_map[i].key != kEmptyKey && _map[i].key != when)
        i = (i + 1) & mask;

    if (_map[i].key == when) {
        // Same-tick append: O(1), no heap traffic at all.
        const std::uint32_t bucket = _map[i].value;
        Bucket& bk = _buckets[bucket];
        ev.bucket = bucket;
        if (bk.head == kNil) {
            // Revive a bucket drained by cancellation.
            ev.prev = kNil;
            bk.head = slot;
            bk.tail = slot;
        } else {
            ev.prev = bk.tail;
            _events[bk.tail].next = slot;
            bk.tail = slot;
        }
    } else {
        const std::uint32_t bucket = acquireBucket(when, slot);
        ev.prev = kNil;
        ev.bucket = bucket;
        _map[i] = MapEntry{when, bucket, hash};
        ++_mapLive;
        _buckets[bucket].mapIndex = static_cast<std::uint32_t>(i);
        _heap.emplace_back();
        siftUp(_heap.size() - 1, HeapNode{when, bucket});
    }
    ++_live;
    ++_scheduled;
    return makeId(slot, ev.generation);
}

EventId
Engine::scheduleAfter(Tick delay, Callback cb)
{
    if (delay < 0)
        throw std::invalid_argument("Engine::scheduleAfter: negative delay");
    return schedule(_now + delay, std::move(cb));
}

std::uint32_t
Engine::decodeLive(EventId id) const
{
    const std::uint64_t low = id & 0xffffffffu;
    if (low == 0)
        return kNil;
    const auto slot = static_cast<std::uint32_t>(low - 1);
    if (slot >= _events.size())
        return kNil;
    const EventMeta& ev = _events[slot];
    if (ev.generation != static_cast<std::uint32_t>(id >> 32) ||
        ev.bucket == kNil)
        return kNil;
    return slot;
}

bool
Engine::cancel(EventId id)
{
    const std::uint32_t slot = decodeLive(id);
    if (slot == kNil)
        return false;

    EventMeta& ev = _events[slot];
    const std::uint32_t bucket = ev.bucket;
    Bucket& bk = _buckets[bucket];
    if (ev.prev != kNil)
        _events[ev.prev].next = ev.next;
    else
        bk.head = ev.next;
    if (ev.next != kNil)
        _events[ev.next].prev = ev.prev;
    else
        bk.tail = ev.prev;

    // A bucket drained by cancellation stays in heap and map as an
    // empty node: a later same-tick schedule revives it in O(1), and
    // pruneFront() collects it if it surfaces unrevived. This keeps
    // cancel() itself O(1) — the keep-alive renewal pattern cancels
    // and reschedules constantly.
    releaseSlot(slot);
    --_live;
    ++_cancelled;
    return true;
}

bool
Engine::pending(EventId id) const
{
    return decodeLive(id) != kNil;
}

void
Engine::dispatchFront()
{
    const std::uint32_t bucket = _heap[0].bucket;
    Bucket& bk = _buckets[bucket];
    const Tick when = bk.when;
    assert(when >= _now && "event queue must be monotonic");

    const std::uint32_t slot = bk.head;
    const std::uint32_t next = _events[slot].next;

    // Move the callback out and retire the event *before* invoking,
    // so the callback may freely schedule or cancel other events
    // (including re-entrant patterns).
    InplaceCallback cb = std::move(_cbs[slot]);
    releaseSlot(slot);
    if (next == kNil) {
        // Drained by dispatch: collect eagerly — a callback that
        // schedules for the current tick just creates a fresh bucket,
        // which lands at the heap front and fires next, preserving
        // FIFO.
        mapEraseAt(bk.mapIndex);
        popFront();
        releaseBucket(bucket);
    } else {
        bk.head = next;
        _events[next].prev = kNil;
    }
    --_live;

    _now = when;
    ++_executed;
    cb();
}

void
Engine::pruneFront()
{
    while (!_heap.empty()) {
        const std::uint32_t bucket = _heap[0].bucket;
        if (_buckets[bucket].head != kNil)
            return;
        mapEraseAt(_buckets[bucket].mapIndex);
        popFront();
        releaseBucket(bucket);
    }
}

bool
Engine::step()
{
    pruneFront();
    if (_heap.empty())
        return false;
    dispatchFront();
    return true;
}

void
Engine::run()
{
    for (;;) {
        pruneFront();
        if (_heap.empty())
            return;
        dispatchFront();
    }
}

void
Engine::runUntil(Tick horizon)
{
    for (;;) {
        pruneFront();
        if (_heap.empty() || _heap[0].when > horizon)
            break;
        dispatchFront();
    }
    if (_now < horizon)
        _now = horizon;
}

void
Engine::clear()
{
    _heap.clear();
    _buckets.clear();
    _freeBuckets.clear();
    _freeSlots.clear();
    _map.clear();
    _mapLive = 0;
    // Bump every generation so handles issued before clear() can
    // never alias an event scheduled after it. Refill the free list
    // back-to-front so a cleared engine hands out slots 0, 1, 2, ...
    // exactly like a fresh one.
    for (std::size_t i = _events.size(); i-- > 0;) {
        _cbs[i].reset();
        EventMeta& ev = _events[i];
        ev.bucket = kNil;
        ++ev.generation;
        _freeSlots.push_back(static_cast<std::uint32_t>(i));
    }
    _now = 0;
    _executed = 0;
    _scheduled = 0;
    _cancelled = 0;
    _live = 0;
}

} // namespace rc::sim
