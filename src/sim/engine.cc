#include "sim/engine.hh"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace rc::sim {

EventId
Engine::schedule(Tick when, Callback cb)
{
    if (when < _now) {
        throw std::invalid_argument(
            "Engine::schedule: event time is in the past");
    }
    const EventId id = _nextId++;
    _queue.push(QueueEntry{when, _nextSeq++, id});
    _callbacks.emplace(id, std::move(cb));
    return id;
}

EventId
Engine::scheduleAfter(Tick delay, Callback cb)
{
    if (delay < 0)
        throw std::invalid_argument("Engine::scheduleAfter: negative delay");
    return schedule(_now + delay, std::move(cb));
}

bool
Engine::cancel(EventId id)
{
    return _callbacks.erase(id) > 0;
}

bool
Engine::pending(EventId id) const
{
    return _callbacks.find(id) != _callbacks.end();
}

void
Engine::dispatchFront()
{
    const QueueEntry entry = _queue.top();
    _queue.pop();

    auto it = _callbacks.find(entry.id);
    if (it == _callbacks.end())
        return; // cancelled

    assert(entry.when >= _now && "event queue must be monotonic");
    _now = entry.when;

    // Move the callback out before erasing so the callback may freely
    // schedule or cancel other events (including re-entrant patterns).
    Callback cb = std::move(it->second);
    _callbacks.erase(it);
    ++_executed;
    cb();
}

bool
Engine::step()
{
    // Skip over tombstones of cancelled events.
    while (!_queue.empty()) {
        if (_callbacks.find(_queue.top().id) == _callbacks.end()) {
            _queue.pop();
            continue;
        }
        dispatchFront();
        return true;
    }
    return false;
}

void
Engine::run()
{
    while (step()) {
    }
}

void
Engine::runUntil(Tick horizon)
{
    while (!_queue.empty()) {
        // Drop cancelled entries without advancing time.
        if (_callbacks.find(_queue.top().id) == _callbacks.end()) {
            _queue.pop();
            continue;
        }
        if (_queue.top().when > horizon)
            break;
        dispatchFront();
    }
    if (_now < horizon)
        _now = horizon;
}

} // namespace rc::sim
