#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace rc::sim {

namespace {

// Atomic because the sharded cluster core evaluates RC_LOG gates on
// worker threads while a caller may flip the level; relaxed order is
// enough — the level is a filter, not a synchronization point.
std::atomic<LogLevel> gLevel{LogLevel::Quiet};

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Quiet: return "QUIET";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    const LogLevel current = gLevel.load(std::memory_order_relaxed);
    return level >= current && current != LogLevel::Quiet &&
           level != LogLevel::Quiet;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (!logEnabled(level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string& msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string& msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace rc::sim
