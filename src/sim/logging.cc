#include "sim/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace rc::sim {

namespace {

LogLevel gLevel = LogLevel::Quiet;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Quiet: return "QUIET";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

bool
logEnabled(LogLevel level)
{
    return level >= gLevel && gLevel != LogLevel::Quiet &&
           level != LogLevel::Quiet;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (!logEnabled(level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string& msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string& msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace rc::sim
