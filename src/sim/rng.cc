#include "sim/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rc::sim {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(_gen);
}

double
Rng::uniform(double lo, double hi)
{
    if (lo > hi)
        throw std::invalid_argument("Rng::uniform: lo > hi");
    if (lo == hi)
        return lo;
    return std::uniform_real_distribution<double>(lo, hi)(_gen);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        throw std::invalid_argument("Rng::uniformInt: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(_gen);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return std::bernoulli_distribution(p)(_gen);
}

double
Rng::exponential(double lambda)
{
    if (lambda <= 0.0)
        throw std::invalid_argument("Rng::exponential: lambda must be > 0");
    return std::exponential_distribution<double>(lambda)(_gen);
}

std::int64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        throw std::invalid_argument("Rng::poisson: negative mean");
    if (mean == 0.0)
        return 0;
    return std::poisson_distribution<std::int64_t>(mean)(_gen);
}

double
Rng::normal(double mean, double stddev)
{
    if (stddev < 0.0)
        throw std::invalid_argument("Rng::normal: negative stddev");
    if (stddev == 0.0)
        return mean;
    return std::normal_distribution<double>(mean, stddev)(_gen);
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    if (mean <= 0.0)
        throw std::invalid_argument("Rng::lognormalMeanCv: mean must be > 0");
    if (cv < 0.0)
        throw std::invalid_argument("Rng::lognormalMeanCv: negative cv");
    if (cv == 0.0)
        return mean;
    // For lognormal: mean = exp(mu + sigma^2/2), cv^2 = exp(sigma^2) - 1.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - sigma2 / 2.0;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(_gen);
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    if (n == 0)
        throw std::invalid_argument("Rng::zipf: empty support");
    // Inverse-CDF over the (small) support; n is at most a few
    // thousand functions so linear scan is fine and exact.
    double norm = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
        norm += 1.0 / std::pow(static_cast<double>(i), s);
    double u = uniform() * norm;
    for (std::size_t i = 1; i <= n; ++i) {
        u -= 1.0 / std::pow(static_cast<double>(i), s);
        if (u <= 0.0)
            return i - 1;
    }
    return n - 1;
}

Rng
Rng::stream(std::string_view name) const
{
    // FNV-1a over the stream name, mixed with the construction seed
    // via splitmix64-style finalization. Touching only _seed keeps
    // this side-effect free on the parent's draw sequence.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    std::uint64_t mixed = _seed ^ hash;
    mixed += 0x9e3779b97f4a7c15ULL;
    mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
    mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
    mixed ^= mixed >> 31;
    return Rng(mixed);
}

Rng
Rng::fork(std::uint64_t streamIndex) const
{
    // Mix the stream index into a copy of the generator state by
    // seeding from a hash of (state draw, index). Deterministic and
    // independent enough for workload synthesis.
    std::mt19937_64 copy = _gen;
    const std::uint64_t base = copy();
    const std::uint64_t mixed =
        base ^ (streamIndex * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
    return Rng(mixed);
}

} // namespace rc::sim
