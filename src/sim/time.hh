/**
 * @file
 * Simulation time base for the RainbowCake simulator.
 *
 * All simulated time is kept as a signed 64-bit count of microseconds
 * (a Tick), mirroring the fixed-point "tick" convention of classic
 * architecture simulators. Helper constants and conversion functions
 * keep call sites free of magic numbers; cost arithmetic that follows
 * the paper's Eq. 1/6 converts to floating-point seconds explicitly.
 */

#ifndef RC_SIM_TIME_HH_
#define RC_SIM_TIME_HH_

#include <cstdint>

namespace rc::sim {

/** Simulated time or duration in microseconds. */
using Tick = std::int64_t;

/** One microsecond, the base resolution of the simulator. */
inline constexpr Tick kMicrosecond = 1;
/** One millisecond in ticks. */
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second in ticks. */
inline constexpr Tick kSecond = 1000 * kMillisecond;
/** One minute in ticks. */
inline constexpr Tick kMinute = 60 * kSecond;
/** One hour in ticks. */
inline constexpr Tick kHour = 60 * kMinute;

/** Convert a floating-point number of seconds to ticks (truncating). */
constexpr Tick
fromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kSecond));
}

/** Convert a floating-point number of milliseconds to ticks. */
constexpr Tick
fromMillis(double millis)
{
    return static_cast<Tick>(millis * static_cast<double>(kMillisecond));
}

/** Convert ticks to floating-point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert ticks to whole minutes (floor); used for minute bucketing. */
constexpr std::int64_t
toMinuteBucket(Tick t)
{
    return t / kMinute;
}

} // namespace rc::sim

#endif // RC_SIM_TIME_HH_
