/**
 * @file
 * Minimal leveled logging used across the simulator.
 *
 * Follows the gem5 split between conditions that are the user's fault
 * (fatal) and conditions that indicate a simulator bug (panic). Debug
 * tracing is compiled in but off by default; experiments run with
 * logging disabled so timing-insensitive output never perturbs
 * results.
 */

#ifndef RC_SIM_LOGGING_HH_
#define RC_SIM_LOGGING_HH_

#include <sstream>
#include <string>
#include <utility>

namespace rc::sim {

/** Severity levels for the global logger. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Quiet, // suppress everything below fatal/panic
};

/** Global log level; default Quiet so experiments stay clean. */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** True if a message at @p level would be emitted right now. */
bool logEnabled(LogLevel level);

/** Emit a message at @p level if enabled. */
void logMessage(LogLevel level, const std::string& msg);

/**
 * Lazy overload: @p makeMsg (any callable returning something
 * streamable into std::string, typically a lambda) is only invoked
 * when @p level is enabled, so disabled logging does zero formatting
 * work. Prefer RC_LOG below at call sites — it additionally skips
 * evaluating the argument expressions.
 */
template <typename MakeMsg,
          typename = decltype(std::declval<MakeMsg>()())>
inline void
logMessage(LogLevel level, MakeMsg&& makeMsg)
{
    if (logEnabled(level))
        logMessage(level, std::string(makeMsg()));
}

/**
 * Abort with a message: a condition the user caused (bad config,
 * invalid arguments). Throws std::runtime_error so tests can assert
 * on it; main()s translate it to exit(1).
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Abort with a message: a condition that should never happen
 * regardless of user input (an internal invariant violation).
 */
[[noreturn]] void panic(const std::string& msg);

} // namespace rc::sim

/**
 * Leveled logging with zero-cost disabled paths: the streamed
 * expression after the level is not evaluated unless the level is
 * enabled (the whole statement is behind the logEnabled() branch).
 *
 *   RC_LOG(Debug, "evicting container " << id << " (" << mb << " MB)");
 *
 * Levels are the bare LogLevel enumerator names.
 */
#define RC_LOG(level, expr)                                                 \
    do {                                                                    \
        if (::rc::sim::logEnabled(::rc::sim::LogLevel::level)) {            \
            std::ostringstream rcLogStream_;                                \
            rcLogStream_ << expr;                                           \
            ::rc::sim::logMessage(::rc::sim::LogLevel::level,               \
                                  rcLogStream_.str());                      \
        }                                                                   \
    } while (0)

#endif // RC_SIM_LOGGING_HH_
