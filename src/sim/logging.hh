/**
 * @file
 * Minimal leveled logging used across the simulator.
 *
 * Follows the gem5 split between conditions that are the user's fault
 * (fatal) and conditions that indicate a simulator bug (panic). Debug
 * tracing is compiled in but off by default; experiments run with
 * logging disabled so timing-insensitive output never perturbs
 * results.
 */

#ifndef RC_SIM_LOGGING_HH_
#define RC_SIM_LOGGING_HH_

#include <sstream>
#include <string>

namespace rc::sim {

/** Severity levels for the global logger. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Quiet, // suppress everything below fatal/panic
};

/** Global log level; default Quiet so experiments stay clean. */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** Emit a message at @p level if enabled. */
void logMessage(LogLevel level, const std::string& msg);

/**
 * Abort with a message: a condition the user caused (bad config,
 * invalid arguments). Throws std::runtime_error so tests can assert
 * on it; main()s translate it to exit(1).
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Abort with a message: a condition that should never happen
 * regardless of user input (an internal invariant violation).
 */
[[noreturn]] void panic(const std::string& msg);

} // namespace rc::sim

#endif // RC_SIM_LOGGING_HH_
