/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine owns a priority queue of timestamped events. Events
 * scheduled for the same tick fire in scheduling order (FIFO), which
 * makes runs fully deterministic. Scheduled events can be cancelled,
 * which is the mechanism behind keep-alive TTL renewal: a container
 * cancels its pending timeout when it is reused and schedules a fresh
 * one when it goes idle again.
 */

#ifndef RC_SIM_ENGINE_HH_
#define RC_SIM_ENGINE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hh"

namespace rc::sim {

/** Opaque handle to a scheduled event; 0 is never a valid id. */
using EventId = std::uint64_t;

/** Sentinel id meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Deterministic discrete-event engine.
 *
 * Not thread-safe by design: a simulation run is a single logical
 * timeline, and determinism (same seed, same schedule, same results)
 * is a hard requirement of the experiment harness.
 */
class Engine
{
  public:
    using Callback = std::function<void()>;

    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now().
     * @param cb    Callback invoked when simulated time reaches @p when.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks after the current time. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a pending event.
     *
     * Cancelling an id that already fired or was already cancelled is
     * a harmless no-op so callers do not need to track firing order.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** @return true if @p id refers to a still-pending event. */
    bool pending(EventId id) const;

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p horizon. Events at exactly @p horizon still fire; the clock
     * never exceeds the horizon.
     */
    void runUntil(Tick horizon);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed since construction. */
    std::uint64_t executedEvents() const { return _executed; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return _callbacks.size(); }

  private:
    struct QueueEntry
    {
        Tick when;
        std::uint64_t seq; // tie-break: earlier scheduling fires first
        EventId id;

        bool
        operator>(const QueueEntry& other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Pop and run the front event; precondition: queue not empty. */
    void dispatchFront();

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>> _queue;
    std::unordered_map<EventId, Callback> _callbacks;
};

} // namespace rc::sim

#endif // RC_SIM_ENGINE_HH_
