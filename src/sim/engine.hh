/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine owns an indexed 4-ary min-heap of *tick buckets*: one
 * heap node per distinct pending timestamp, each holding an intrusive
 * FIFO list of that tick's events. Events scheduled for the same tick
 * fire in scheduling order (FIFO), which makes runs fully
 * deterministic. Scheduled events can be cancelled, which is the
 * mechanism behind keep-alive TTL renewal: a container cancels its
 * pending timeout when it is reused and schedules a fresh one when it
 * goes idle again.
 *
 * Hot-path layout:
 *  - callbacks are `InplaceCallback`s (48-byte small-buffer storage,
 *    no per-event heap allocation) living in a stable slot table;
 *  - heap nodes are 16-byte PODs, so sift operations move PODs only,
 *    and because simulated workloads pile many events onto the same
 *    tick (keep-alive expiries, per-minute arrival buckets) the heap
 *    holds one node per *distinct* tick — sift work is amortised over
 *    every event sharing the timestamp;
 *  - a flat open-addressing table maps tick -> bucket for O(1)
 *    same-tick appends;
 *  - cancel() unlinks from the bucket list in O(1). A bucket drained
 *    by cancellation stays in the heap as an empty node that a later
 *    same-tick schedule revives in O(1); exhausted buckets are
 *    collected with an O(log n) pop when they surface at the heap
 *    front. Removal only ever happens at the front, so sifting never
 *    maintains back-pointers. Unlike the earlier priority_queue
 *    design there is no per-event tombstone and no per-pop map
 *    lookup, and pendingEvents() is always exact;
 *  - slots carry a generation counter so stale handles stay harmless
 *    no-ops.
 */

#ifndef RC_SIM_ENGINE_HH_
#define RC_SIM_ENGINE_HH_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inplace_callback.hh"
#include "sim/time.hh"

namespace rc::sim {

/** Opaque handle to a scheduled event; 0 is never a valid id. */
using EventId = std::uint64_t;

/** Sentinel id meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Deterministic discrete-event engine.
 *
 * Not thread-safe by design: a simulation run is a single logical
 * timeline, and determinism (same seed, same schedule, same results)
 * is a hard requirement of the experiment harness. Parallel sweeps
 * (`rc::exp::ParallelRunner`) give each run its own Engine.
 */
class Engine
{
  public:
    using Callback = InplaceCallback;

    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now().
     * @param cb    Callback invoked when simulated time reaches @p when.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks after the current time. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a pending event.
     *
     * Cancelling an id that already fired or was already cancelled is
     * a harmless no-op so callers do not need to track firing order.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** @return true if @p id refers to a still-pending event. */
    bool pending(EventId id) const;

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p horizon. Events at exactly @p horizon still fire; the clock
     * never exceeds the horizon.
     */
    void runUntil(Tick horizon);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /**
     * Reset to a freshly-constructed state for reuse between runs:
     * drops all pending events and rewinds the clock and counters.
     * Handles issued before clear() remain safely cancellable no-ops
     * (every slot generation is bumped).
     */
    void clear();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed since construction (or clear()). */
    std::uint64_t executedEvents() const { return _executed; }

    /** Number of schedule() calls since construction (or clear()). */
    std::uint64_t scheduledEvents() const { return _scheduled; }

    /** Number of successful cancels since construction (or clear()). */
    std::uint64_t cancelledEvents() const { return _cancelled; }

    /** Number of live (scheduled, non-cancelled) events. */
    std::size_t pendingEvents() const { return _live; }

    /**
     * Earliest pending tick, or Tick's max when the queue is empty.
     * Conservative: the front bucket may hold only cancelled events,
     * so the returned tick can be earlier than the next event that
     * will actually fire — callers may poll too early, never too
     * late. The sharded cluster core uses this to skip idle nodes in
     * a barrier window without touching the heap.
     */
    Tick
    nextEventAt() const
    {
        return _heap.empty() ? std::numeric_limits<Tick>::max()
                             : _heap[0].when;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr Tick kEmptyKey = -1; // valid whens are >= 0

    /** POD heap node: one per distinct pending tick. */
    struct HeapNode
    {
        Tick when;
        std::uint32_t bucket;
    };

    /** FIFO list of the events pending at one tick. */
    struct Bucket
    {
        Tick when;
        std::uint32_t head;
        std::uint32_t tail;
        std::uint32_t mapIndex; // this bucket's slot in _map
    };

    /**
     * Per-event bookkeeping, kept separate from the callback storage
     * so link updates touch a dense 16-byte-stride array. A slot is
     * live iff bucket != kNil.
     */
    struct EventMeta
    {
        std::uint32_t next = kNil;
        std::uint32_t prev = kNil;
        std::uint32_t bucket = kNil;
        std::uint32_t generation = 1;
    };

    /** Open-addressing tick -> bucket entry. */
    struct MapEntry
    {
        Tick key = kEmptyKey;
        std::uint32_t value = 0;
        std::uint32_t hash = 0; // low bits of hashTick(key), cached
    };

    static bool
    before(const HeapNode& a, const HeapNode& b)
    {
        // One bucket per tick, so keys are unique and FIFO ordering
        // lives entirely inside the bucket lists.
        return a.when < b.when;
    }

    static EventId
    makeId(std::uint32_t slot, std::uint32_t generation)
    {
        // Low word: slot + 1, so id 0 is never produced. High word:
        // generation, so slot reuse invalidates old handles.
        return (static_cast<EventId>(generation) << 32) |
               static_cast<EventId>(slot + 1);
    }

    static std::size_t hashTick(Tick when);

    /** @return slot index for @p id, or kNil if not pending. */
    std::uint32_t decodeLive(EventId id) const;

    std::uint32_t acquireSlot(InplaceCallback&& cb);
    void releaseSlot(std::uint32_t slot);
    std::uint32_t acquireBucket(Tick when, std::uint32_t slot);
    void releaseBucket(std::uint32_t bucket);

    /** Backward-shift erase of _map[hole] (keeps probes chain-free). */
    void mapEraseAt(std::size_t hole);
    void mapGrow();

    void siftUp(std::size_t pos, HeapNode node);
    void siftDown(std::size_t pos, HeapNode node);
    /** Remove the heap front, restoring heap order. */
    void popFront();

    /** Collect exhausted tick buckets sitting at the heap front. */
    void pruneFront();

    /**
     * Pop and run the front event; precondition: pruneFront() has
     * run and the heap is not empty.
     */
    void dispatchFront();

    Tick _now = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _scheduled = 0;
    std::uint64_t _cancelled = 0;
    std::size_t _live = 0;
    std::vector<HeapNode> _heap;
    std::vector<Bucket> _buckets;
    std::vector<std::uint32_t> _freeBuckets;
    std::vector<EventMeta> _events;    // indexed by slot
    std::vector<InplaceCallback> _cbs; // indexed by slot
    std::vector<std::uint32_t> _freeSlots;
    std::vector<MapEntry> _map; // power-of-two open addressing
    std::size_t _mapLive = 0;
};

} // namespace rc::sim

#endif // RC_SIM_ENGINE_HH_
