#include "sim/shard_executor.hh"

namespace rc::sim {

ShardExecutor::ShardExecutor(std::size_t workers)
    : _workers(workers == 0 ? 1 : workers)
{
    if (_workers == 1)
        return; // inline mode: no threads at all
    _threads.reserve(_workers);
    for (std::size_t i = 0; i < _workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

ShardExecutor::~ShardExecutor()
{
    if (_threads.empty())
        return;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
        ++_generation;
    }
    _start.notify_all();
    for (auto& thread : _threads)
        thread.join();
}

void
ShardExecutor::drainInline()
{
    const RoundFn& fn = *_fn;
    std::size_t i;
    while ((i = _cursor.fetch_add(1, std::memory_order_relaxed)) < _count)
        fn(i);
}

void
ShardExecutor::runRound(std::size_t count, const RoundFn& fn)
{
    if (count == 0)
        return;
    _fn = &fn;
    _count = count;
    _cursor.store(0, std::memory_order_relaxed);
    _error = nullptr;

    if (count == 1 || _threads.empty()) {
        // Inline mode, and the fast path for single-task rounds: with
        // one task the caller's thread beats a park/notify handshake.
        // Safe with live workers — they are parked between rounds, and
        // the next round's mutex handshake publishes whatever the
        // inline task wrote.
        drainInline();
        _fn = nullptr;
        return;
    }

    std::uint64_t round;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        round = ++_generation;
        _active = _threads.size();
    }
    _start.notify_all();
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done.wait(lock, [this] { return _active == 0; });
    }
    (void)round;
    _fn = nullptr;
    if (_error)
        std::rethrow_exception(_error);
}

void
ShardExecutor::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _start.wait(lock, [this, seen] {
                return _generation != seen;
            });
            seen = _generation;
            if (_stopping)
                return;
        }
        try {
            drainInline();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (!_error)
                _error = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (--_active == 0)
                _done.notify_all();
        }
    }
}

} // namespace rc::sim
