/**
 * @file
 * Persistent worker crew for sharded simulation rounds.
 *
 * A sharded cluster run alternates short serial coordinator phases
 * with parallel shard phases, thousands of times per run. Spawning
 * threads per phase would dominate the run, so the executor keeps a
 * fixed crew alive and hands it one *round* at a time: runRound(n, fn)
 * invokes fn(i) for every i in [0, n) across the crew and returns
 * when all of them finished. The mutex/condition-variable handshake
 * on both edges of a round gives the caller the happens-before
 * guarantees it needs: everything the workers wrote during the round
 * is visible to the caller after runRound returns, and everything the
 * caller wrote before runRound is visible to the workers.
 *
 * Determinism: the executor never influences results. Work items are
 * pulled from an atomic cursor, so *which* worker runs an item (and
 * in what interleaving) varies between executions — callers must only
 * submit items that touch disjoint state (rc::cluster shards do:
 * every node belongs to exactly one shard). Built with one worker,
 * the executor runs rounds inline on the calling thread, which keeps
 * `--shards 1` runs literally single-threaded.
 */

#ifndef RC_SIM_SHARD_EXECUTOR_HH_
#define RC_SIM_SHARD_EXECUTOR_HH_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rc::sim {

/** Fixed crew of workers executing synchronized rounds. */
class ShardExecutor
{
  public:
    using RoundFn = std::function<void(std::size_t)>;

    /**
     * @param workers  Crew size; clamped to at least 1. With one
     *                 worker no thread is ever spawned and rounds run
     *                 inline on the caller.
     */
    explicit ShardExecutor(std::size_t workers);

    ShardExecutor(const ShardExecutor&) = delete;
    ShardExecutor& operator=(const ShardExecutor&) = delete;

    ~ShardExecutor();

    /** Crew size (1 means inline execution). */
    std::size_t workers() const { return _workers; }

    /**
     * Run @p fn(i) for every i in [0, count) and wait for completion.
     * Items are claimed through an atomic cursor, so @p fn must be
     * safe to call concurrently for distinct indices. The first
     * exception a round throws is rethrown here after every worker
     * went back to sleep.
     */
    void runRound(std::size_t count, const RoundFn& fn);

  private:
    void workerLoop();
    void drainInline();

    std::size_t _workers;
    std::vector<std::thread> _threads;

    std::mutex _mutex;
    std::condition_variable _start;
    std::condition_variable _done;
    std::uint64_t _generation = 0; //!< bumps once per round
    std::size_t _active = 0;       //!< workers still in the round
    bool _stopping = false;

    const RoundFn* _fn = nullptr;
    std::size_t _count = 0;
    std::atomic<std::size_t> _cursor{0};
    std::exception_ptr _error;
};

} // namespace rc::sim

#endif // RC_SIM_SHARD_EXECUTOR_HH_
