/**
 * @file
 * Small-buffer-optimised move-only callable for the event engine.
 *
 * `std::function` heap-allocates any capture larger than ~16 bytes and
 * drags in RTTI + copy machinery the engine never uses. Event
 * callbacks are scheduled and destroyed millions of times per run, so
 * the engine stores them in an `InplaceCallback`: a 48-byte inline
 * buffer plus one vtable pointer. Callables that fit (every lambda in
 * this codebase) are constructed directly in the buffer; larger or
 * throwing-move callables fall back to a single heap allocation.
 */

#ifndef RC_SIM_INPLACE_CALLBACK_HH_
#define RC_SIM_INPLACE_CALLBACK_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rc::sim {

class InplaceCallback
{
  public:
    /** Capture bytes stored without a heap allocation. */
    static constexpr std::size_t kInlineBytes = 48;

    InplaceCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InplaceCallback> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
    InplaceCallback(F&& fn) // NOLINT: implicit like std::function
    {
        using D = std::remove_cvref_t<F>;
        if constexpr (fitsInline<D>) {
            ::new (storage()) D(std::forward<F>(fn));
            _ops = &InlineVt<D>::ops;
        } else {
            ::new (storage()) D*(new D(std::forward<F>(fn)));
            _ops = &HeapVt<D>::ops;
        }
        static_assert(fitsInline<D> || sizeof(D*) <= kInlineBytes);
    }

    InplaceCallback(InplaceCallback&& other) noexcept { moveFrom(other); }

    InplaceCallback&
    operator=(InplaceCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback&) = delete;
    InplaceCallback& operator=(const InplaceCallback&) = delete;

    ~InplaceCallback() { reset(); }

    /** Invoke the stored callable; precondition: non-empty. */
    void operator()() { _ops->invoke(storage()); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset() noexcept
    {
        if (_ops != nullptr) {
            if (!_ops->trivial)
                _ops->destroy(storage());
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void* storage);
        /** Move-construct into @p to and destroy the source. */
        void (*relocate)(void* from, void* to) noexcept;
        void (*destroy)(void* storage) noexcept;
        /** Trivially copyable + destructible: move is a raw memcpy. */
        bool trivial;
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= kInlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static constexpr bool triviallyRelocatable =
        std::is_trivially_copyable_v<D> &&
        std::is_trivially_destructible_v<D>;

    template <typename D>
    struct InlineVt
    {
        static D* self(void* p) { return std::launder(static_cast<D*>(p)); }
        static void invoke(void* p) { (*self(p))(); }
        static void
        relocate(void* from, void* to) noexcept
        {
            ::new (to) D(std::move(*self(from)));
            self(from)->~D();
        }
        static void destroy(void* p) noexcept { self(p)->~D(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy,
                                 triviallyRelocatable<D>};
    };

    template <typename D>
    struct HeapVt
    {
        static D*
        self(void* p)
        {
            return *std::launder(static_cast<D**>(p));
        }
        static void invoke(void* p) { (*self(p))(); }
        static void
        relocate(void* from, void* to) noexcept
        {
            ::new (to) D*(self(from));
        }
        static void destroy(void* p) noexcept { delete self(p); }
        // The owning pointer itself relocates as a raw copy, but the
        // destructor must still run, so the heap path is never
        // trivial.
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    void* storage() noexcept { return static_cast<void*>(_storage); }

    void
    moveFrom(InplaceCallback& other) noexcept
    {
        if (other._ops != nullptr) {
            // Hot path: every lambda capturing pointers/refs/ints is
            // trivially relocatable — a fixed-size inline memcpy
            // beats an indirect call through the vtable.
            if (other._ops->trivial)
                __builtin_memcpy(_storage, other._storage, kInlineBytes);
            else
                other._ops->relocate(other.storage(), storage());
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte _storage[kInlineBytes];
    const Ops* _ops = nullptr;
};

} // namespace rc::sim

#endif // RC_SIM_INPLACE_CALLBACK_HH_
