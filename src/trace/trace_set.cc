#include "trace/trace_set.hh"

#include <numeric>
#include <stdexcept>

namespace rc::trace {

std::uint64_t
FunctionTrace::totalInvocations() const
{
    return std::accumulate(perMinute.begin(), perMinute.end(),
                           std::uint64_t{0});
}

std::size_t
FunctionTrace::activeMinutes() const
{
    std::size_t active = 0;
    for (const auto count : perMinute) {
        if (count > 0)
            ++active;
    }
    return active;
}

TraceSet::TraceSet(std::size_t minutes) : _minutes(minutes)
{
    if (minutes == 0)
        throw std::invalid_argument("TraceSet: zero-length horizon");
}

void
TraceSet::add(FunctionTrace trace)
{
    trace.perMinute.resize(_minutes, 0);
    _traces.push_back(std::move(trace));
}

std::uint64_t
TraceSet::totalInvocations() const
{
    std::uint64_t total = 0;
    for (const auto& trace : _traces)
        total += trace.totalInvocations();
    return total;
}

std::vector<std::uint64_t>
TraceSet::arrivalsPerMinute() const
{
    std::vector<std::uint64_t> totals(_minutes, 0);
    for (const auto& trace : _traces) {
        for (std::size_t minute = 0; minute < _minutes; ++minute)
            totals[minute] += trace.perMinute[minute];
    }
    return totals;
}

} // namespace rc::trace
