/**
 * @file
 * Synthetic Azure-like trace generation.
 *
 * The paper samples real Azure Functions traces; those files are not
 * available here, so we synthesize per-minute bucket traces with the
 * invocation-pattern mix the Azure characterization paper (Shahrad et
 * al.) reports: a few hot steady functions, diurnal services, bursty
 * on/off event handlers, cron-style periodic triggers, and rare
 * spiky functions. Every generator draws from a seeded Rng, so trace
 * sets are reproducible.
 */

#ifndef RC_TRACE_GENERATOR_HH_
#define RC_TRACE_GENERATOR_HH_

#include <cstddef>

#include "sim/rng.hh"
#include "trace/trace_set.hh"
#include "workload/catalog.hh"

namespace rc::trace {

/** Invocation pattern archetypes seen in the Azure workload. */
enum class Pattern
{
    Steady,   //!< near-constant Poisson rate
    Diurnal,  //!< sinusoidally modulated rate
    Bursty,   //!< ON/OFF Markov-modulated rate
    Periodic, //!< cron-like: one invocation every k minutes
    Spiky,    //!< mostly idle with rare large spikes
    Sparse,   //!< renewal process with lognormal IATs (minutes apart)
};

/** Knobs of per-function trace synthesis. */
struct PatternConfig
{
    Pattern pattern = Pattern::Steady;
    /** Mean invocations per minute while "active". */
    double ratePerMinute = 1.0;
    /** Diurnal: relative amplitude in [0,1]; period fixed to 240 min. */
    double diurnalAmplitude = 0.6;
    /** Bursty: probability of staying ON (per minute). */
    double burstStayOn = 0.7;
    /** Bursty: probability of staying OFF (per minute). */
    double burstStayOff = 0.9;
    /** Periodic: invoke every this many minutes. */
    std::size_t periodMinutes = 10;
    /** Spiky: per-minute spike probability. */
    double spikeProbability = 0.01;
    /** Spiky: mean invocations within a spike minute. */
    double spikeMagnitude = 40.0;
    /** Sparse: mean inter-arrival time in minutes. */
    double sparseMeanIatMinutes = 15.0;
    /** Sparse: IAT coefficient of variation (irregularity). */
    double sparseIatCv = 1.2;
    /**
     * Steady/Diurnal: whether per-minute counts are Poisson draws
     * (true) or deterministic rounded rates (false). Hot production
     * services aggregate to near-deterministic per-minute counts;
     * the Poisson noise of a low simulated rate would overstate
     * their burstiness.
     */
    bool poissonCounts = true;
};

/** Generate one function's minute trace with the given pattern. */
FunctionTrace generateFunctionTrace(workload::FunctionId function,
                                    std::size_t minutes,
                                    const PatternConfig& config,
                                    sim::Rng& rng);

/** Knobs of whole-workload synthesis. */
struct WorkloadTraceConfig
{
    std::size_t minutes = 480;
    /** Target total invocations across all functions (approximate). */
    std::uint64_t targetInvocations = 25000;
    /**
     * Zipf skew of per-function popularity. The Azure workload's
     * per-function rates are closer to uniform-sparse than to a
     * heavy head once the platform-wide hottest functions are
     * excluded, so the default skew is mild.
     */
    double popularitySkew = 0.5;
    std::uint64_t seed = 42;
};

/**
 * Generate an Azure-like trace set for every function of @p catalog:
 * popularity ranks are Zipf-distributed and each function gets a
 * pattern archetype in round-robin over the archetype mix.
 */
TraceSet generateAzureLike(const workload::Catalog& catalog,
                           const WorkloadTraceConfig& config);

} // namespace rc::trace

#endif // RC_TRACE_GENERATOR_HH_
