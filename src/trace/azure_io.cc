#include "trace/azure_io.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rc::trace {

namespace {

/** Split one CSV line on commas (the dataset has no quoting). */
std::vector<std::string>
splitCsv(const std::string& line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream iss(line);
    while (std::getline(iss, cell, ','))
        cells.push_back(cell);
    return cells;
}

constexpr std::size_t kMetaColumns = 4; // owner, app, function, trigger

} // namespace

TraceSet
loadAzureCsv(std::istream& in, const workload::Catalog& catalog,
             std::size_t minutes)
{
    TraceSet set(minutes);
    std::string line;
    bool headerSkipped = false;
    workload::FunctionId next = 0;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (!headerSkipped) {
            // The dataset's first row is a header (column names).
            headerSkipped = true;
            if (line.find("HashOwner") != std::string::npos ||
                line.find("owner") != std::string::npos) {
                continue;
            }
            // No header: fall through and parse as data.
        }
        if (next >= catalog.size())
            break; // surplus rows ignored

        const auto cells = splitCsv(line);
        if (cells.size() <= kMetaColumns) {
            throw std::runtime_error(
                "loadAzureCsv: row has no per-minute columns");
        }
        FunctionTrace trace;
        trace.function = next++;
        trace.perMinute.reserve(minutes);
        for (std::size_t i = kMetaColumns;
             i < cells.size() && trace.perMinute.size() < minutes; ++i) {
            try {
                const long v = std::stol(cells[i]);
                if (v < 0) {
                    throw std::runtime_error(
                        "loadAzureCsv: negative invocation count");
                }
                trace.perMinute.push_back(
                    static_cast<std::uint32_t>(v));
            } catch (const std::invalid_argument&) {
                throw std::runtime_error(
                    "loadAzureCsv: non-numeric count '" + cells[i] + "'");
            }
        }
        set.add(std::move(trace));
    }
    // Silent functions for missing rows keep function ids aligned.
    while (next < catalog.size()) {
        FunctionTrace empty;
        empty.function = next++;
        set.add(std::move(empty));
    }
    return set;
}

void
saveAzureCsv(std::ostream& out, const TraceSet& set,
             const workload::Catalog& catalog)
{
    out << "HashOwner,HashApp,HashFunction,Trigger";
    for (std::size_t m = 1; m <= set.durationMinutes(); ++m)
        out << ',' << m;
    out << '\n';
    for (const auto& trace : set.traces()) {
        const auto& name = trace.function < catalog.size()
                               ? catalog.at(trace.function).shortName()
                               : std::to_string(trace.function);
        out << name << ',' << name << ',' << name << ",sim";
        for (const auto count : trace.perMinute)
            out << ',' << count;
        out << '\n';
    }
}

} // namespace rc::trace
