#include "trace/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rc::trace {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint32_t
clampCount(std::int64_t count)
{
    if (count < 0)
        return 0;
    if (count > 100000)
        return 100000;
    return static_cast<std::uint32_t>(count);
}

} // namespace

FunctionTrace
generateFunctionTrace(workload::FunctionId function, std::size_t minutes,
                      const PatternConfig& config, sim::Rng& rng)
{
    if (minutes == 0)
        throw std::invalid_argument("generateFunctionTrace: zero minutes");
    if (config.ratePerMinute < 0.0)
        throw std::invalid_argument("generateFunctionTrace: negative rate");

    FunctionTrace trace;
    trace.function = function;
    trace.perMinute.assign(minutes, 0);

    switch (config.pattern) {
      case Pattern::Steady:
        for (std::size_t m = 0; m < minutes; ++m) {
            trace.perMinute[m] = clampCount(
                config.poissonCounts
                    ? rng.poisson(config.ratePerMinute)
                    : static_cast<std::int64_t>(
                          std::llround(config.ratePerMinute)));
        }
        break;

      case Pattern::Diurnal: {
        const double phase = rng.uniform(0.0, 2.0 * kPi);
        const double period = 240.0; // minutes
        for (std::size_t m = 0; m < minutes; ++m) {
            const double modulation =
                1.0 + config.diurnalAmplitude *
                          std::sin(2.0 * kPi * static_cast<double>(m) /
                                       period + phase);
            const double rate =
                std::max(0.0, config.ratePerMinute * modulation);
            trace.perMinute[m] = clampCount(
                config.poissonCounts
                    ? rng.poisson(rate)
                    : static_cast<std::int64_t>(std::llround(rate)));
        }
        break;
      }

      case Pattern::Bursty: {
        // Two-state Markov chain evaluated per minute; ON minutes
        // carry the full rate, OFF minutes are silent. Stationary ON
        // fraction is (1-stayOff) / (2-stayOn-stayOff); the rate is
        // scaled so the long-run mean matches ratePerMinute.
        bool on = rng.bernoulli(0.3);
        const double pOnFraction =
            (1.0 - config.burstStayOff) /
            std::max(1e-9, (2.0 - config.burstStayOn - config.burstStayOff));
        const double onRate =
            config.ratePerMinute / std::max(1e-9, pOnFraction);
        for (std::size_t m = 0; m < minutes; ++m) {
            if (on)
                trace.perMinute[m] = clampCount(rng.poisson(onRate));
            const double stay = on ? config.burstStayOn
                                   : config.burstStayOff;
            if (!rng.bernoulli(stay))
                on = !on;
        }
        break;
      }

      case Pattern::Periodic: {
        const std::size_t period = std::max<std::size_t>(1,
                                                         config.periodMinutes);
        const std::size_t offset =
            static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(period) - 1));
        for (std::size_t m = offset; m < minutes; m += period)
            trace.perMinute[m] = 1;
        break;
      }

      case Pattern::Spiky:
        for (std::size_t m = 0; m < minutes; ++m) {
            if (rng.bernoulli(config.spikeProbability)) {
                trace.perMinute[m] = clampCount(
                    1 + rng.poisson(config.spikeMagnitude));
            }
        }
        break;

      case Pattern::Sparse: {
        // Renewal process with lognormal inter-arrival times: the
        // irregular, widely spaced invocations that dominate the
        // Azure tail and defeat fixed keep-alive windows.
        const double meanSeconds = config.sparseMeanIatMinutes * 60.0;
        const double horizon = static_cast<double>(minutes) * 60.0;
        double t = rng.uniform(0.0, meanSeconds);
        while (t < horizon) {
            const auto m = static_cast<std::size_t>(t / 60.0);
            trace.perMinute[m] = clampCount(
                static_cast<std::int64_t>(trace.perMinute[m]) + 1);
            t += rng.lognormalMeanCv(meanSeconds, config.sparseIatCv);
        }
        break;
      }
    }

    return trace;
}

TraceSet
generateAzureLike(const workload::Catalog& catalog,
                  const WorkloadTraceConfig& config)
{
    if (catalog.empty())
        throw std::invalid_argument("generateAzureLike: empty catalog");

    sim::Rng rng(config.seed);
    const std::size_t n = catalog.size();

    // Zipf popularity weights over a random permutation of functions,
    // so the hottest function is not always id 0.
    std::vector<std::size_t> rank(n);
    std::iota(rank.begin(), rank.end(), 0);
    rng.shuffle(rank);
    std::vector<double> weight(n);
    double weightSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        weight[i] = 1.0 /
            std::pow(static_cast<double>(rank[i]) + 1.0,
                     config.popularitySkew);
        weightSum += weight[i];
    }

    const double totalPerMinute =
        static_cast<double>(config.targetInvocations) /
        static_cast<double>(config.minutes);

    // Rank-based archetype assignment following the Azure
    // characterization (Shahrad et al.): a small head of hot steady /
    // diurnal services carries most of the traffic, a middle band of
    // bursty event handlers fires in widely separated ON periods, and
    // a long tail of cron-style periodic triggers and rare spiky
    // functions arrives with inter-arrival times of many minutes —
    // far beyond fixed keep-alive windows. The tail is what makes
    // the cold-start problem hard (>50% of Azure functions have
    // highly varying invocation patterns).
    TraceSet set(config.minutes);
    for (const auto& profile : catalog) {
        const std::size_t i = profile.id();
        const std::size_t r = rank[i];
        PatternConfig pc;
        pc.ratePerMinute = totalPerMinute * weight[i] / weightSum;
        if (r <= 1) {
            // Warm head: two steady-ish services that stay inside any
            // keep-alive window (they provide the "Load" mass of
            // Fig. 10). Their rate absorbs whatever invocation volume
            // the Zipf weights assign.
            pc.pattern = (r == 0) ? Pattern::Diurnal : Pattern::Steady;
            pc.diurnalAmplitude = rng.uniform(0.4, 0.8);
            pc.poissonCounts = false;
        } else if (r <= 12) {
            // Predictable sparse services (timer/cron-triggered, the
            // largest Azure class): inter-arrival times of 11-28
            // minutes with low variance. Fixed 10-minute keep-alive
            // misses every one of them; IAT-matched pre-warming
            // catches nearly all.
            pc.pattern = Pattern::Sparse;
            pc.sparseMeanIatMinutes = rng.uniform(10.5, 18.0);
            pc.sparseIatCv = rng.uniform(0.2, 0.4);
        } else if (r <= 15) {
            // Clustered event handlers: minute-buckets of a few
            // overlapping invocations separated by long quiet gaps.
            // Cluster fronts defeat keep-alive and concurrency forces
            // extra containers.
            pc.pattern = Pattern::Spiky;
            pc.spikeProbability = 1.0 / rng.uniform(25.0, 45.0);
            pc.spikeMagnitude = rng.uniform(3.0, 8.0);
        } else {
            // Sparse irregular singles: one invocation every 8-35
            // minutes with high variance, defeating point prediction.
            pc.pattern = Pattern::Sparse;
            pc.sparseMeanIatMinutes = rng.uniform(8.0, 35.0);
            pc.sparseIatCv = rng.uniform(1.2, 1.8);
        }
        set.add(generateFunctionTrace(profile.id(), config.minutes, pc, rng));
    }
    return set;
}

} // namespace rc::trace
