/**
 * @file
 * CV-targeted trace sampling (§7.6).
 *
 * The robustness evaluation needs one-hour trace sets whose merged
 * inter-arrival-time coefficient of variation (IAT CV) hits specific
 * targets between 0.2 and 4.0, each with a fixed invocation count.
 * The paper obtains them by scanning the 14-day Azure files for
 * functions whose traces match, and maps one such trace to each
 * function; we instead *construct* one renewal arrival process per
 * function with the exact target mean and CV:
 *
 *   * CV <= 1: gamma-distributed IATs with shape 1/CV^2 (Erlang-like,
 *     sub-Poisson regularity; CV -> 0 approaches a metronome).
 *   * CV > 1: a two-phase hyperexponential with balanced means, the
 *     classic construction for super-Poisson burstiness.
 *
 * Arrivals are then assigned to functions by Zipf popularity and
 * bucketed into the Azure per-minute format.
 */

#ifndef RC_TRACE_SAMPLER_HH_
#define RC_TRACE_SAMPLER_HH_

#include <cstdint>

#include "sim/rng.hh"
#include "trace/trace_set.hh"
#include "workload/catalog.hh"

namespace rc::trace {

/** Knobs of CV-targeted sampling. */
struct CvSampleConfig
{
    std::size_t minutes = 60;
    std::uint64_t invocations = 3600;
    double targetCv = 1.0;
    std::uint64_t seed = 7;
};

/**
 * Build a trace set in which every function receives its own renewal
 * arrival process with the requested *per-function* IAT CV (the
 * paper maps one CV-matched Azure trace to each function, §7.6).
 * Invocations are split evenly so the total count is exact.
 */
TraceSet sampleWithTargetCv(const workload::Catalog& catalog,
                            const CvSampleConfig& config);

/**
 * Draw one inter-arrival time (in seconds) with the given mean and
 * CV using the gamma/hyperexponential construction above. Exposed
 * for unit testing.
 */
double sampleIatSeconds(double meanSeconds, double cv, sim::Rng& rng);

/** Measure the merged-stream IAT CV after replay expansion. */
double measureBucketedCv(const TraceSet& set);

/**
 * Coefficient of variation of the per-minute total arrival counts:
 * the aggregate burstiness visible in Fig. 12(a)'s timelines. (The
 * merged-stream IAT CV is not a faithful readback of the per-function
 * target: superposing many independent regular processes already
 * looks Poisson.)
 */
double perMinuteCountCv(const TraceSet& set);

/**
 * Arrival-weighted mean of the per-function IAT CVs after replay
 * expansion: the faithful readback of the sampler's target.
 */
double meanPerFunctionCv(const TraceSet& set);

} // namespace rc::trace

#endif // RC_TRACE_SAMPLER_HH_
