#include "trace/sampler.hh"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/accumulator.hh"
#include "trace/replay.hh"

namespace rc::trace {

double
sampleIatSeconds(double meanSeconds, double cv, sim::Rng& rng)
{
    if (meanSeconds <= 0.0)
        throw std::invalid_argument("sampleIatSeconds: mean must be > 0");
    if (cv < 0.0)
        throw std::invalid_argument("sampleIatSeconds: negative cv");

    if (cv == 0.0)
        return meanSeconds;

    if (cv <= 1.0) {
        // Gamma renewal process: shape k = 1/cv^2, scale = mean/k.
        const double shape = 1.0 / (cv * cv);
        const double scale = meanSeconds / shape;
        std::gamma_distribution<double> dist(shape, scale);
        return dist(rng.engine());
    }

    // Balanced-means two-phase hyperexponential H2: with probability
    // p use rate lambda1, else lambda2, where
    //   p = (1 + sqrt((cv^2-1)/(cv^2+1))) / 2,
    //   lambda1 = 2p/mean, lambda2 = 2(1-p)/mean.
    const double c2 = cv * cv;
    const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
    const double lambda1 = 2.0 * p / meanSeconds;
    const double lambda2 = 2.0 * (1.0 - p) / meanSeconds;
    const double lambda = rng.bernoulli(p) ? lambda1 : lambda2;
    return rng.exponential(lambda);
}

TraceSet
sampleWithTargetCv(const workload::Catalog& catalog,
                   const CvSampleConfig& config)
{
    if (catalog.empty())
        throw std::invalid_argument("sampleWithTargetCv: empty catalog");
    if (config.invocations == 0)
        throw std::invalid_argument("sampleWithTargetCv: zero invocations");

    // The paper maps one sampled Azure trace with the target IAT CV
    // to each function (§7.6), so the CV here is a *per-function*
    // property: every function receives its own renewal process with
    // the target mean and CV. Invocations are split evenly so the
    // total count is exact.
    sim::Rng rng(config.seed);
    const double horizonSeconds =
        static_cast<double>(config.minutes) * 60.0;
    const std::size_t n = catalog.size();
    const std::uint64_t perFunction = config.invocations / n;
    std::uint64_t leftover = config.invocations % n;

    TraceSet set(config.minutes);
    for (const auto& profile : catalog) {
        std::uint64_t quota = perFunction;
        if (leftover > 0) {
            ++quota;
            --leftover;
        }
        FunctionTrace trace;
        trace.function = profile.id();
        trace.perMinute.assign(config.minutes, 0);
        if (quota == 0) {
            set.add(std::move(trace));
            continue;
        }
        const double meanIatSeconds =
            horizonSeconds / static_cast<double>(quota);
        // Random phase start; wrap around the horizon so the count
        // stays exact even for very bursty draws.
        double t = rng.uniform(0.0, meanIatSeconds);
        for (std::uint64_t i = 0; i < quota; ++i) {
            if (t >= horizonSeconds)
                t = std::fmod(t, horizonSeconds);
            auto minute = static_cast<std::size_t>(t / 60.0);
            if (minute >= config.minutes)
                minute = config.minutes - 1;
            ++trace.perMinute[minute];
            t += sampleIatSeconds(meanIatSeconds, config.targetCv, rng);
        }
        set.add(std::move(trace));
    }
    return set;
}

double
measureBucketedCv(const TraceSet& set)
{
    return iatCv(expandArrivals(set));
}

double
meanPerFunctionCv(const TraceSet& set)
{
    double weighted = 0.0;
    double arrivals = 0.0;
    for (const auto& trace : set.traces()) {
        if (trace.totalInvocations() < 3)
            continue;
        TraceSet single(set.durationMinutes());
        single.add(trace);
        const auto n = static_cast<double>(trace.totalInvocations());
        weighted += iatCv(expandArrivals(single)) * n;
        arrivals += n;
    }
    return arrivals > 0.0 ? weighted / arrivals : 0.0;
}

double
perMinuteCountCv(const TraceSet& set)
{
    stats::Accumulator acc;
    for (const auto count : set.arrivalsPerMinute())
        acc.add(static_cast<double>(count));
    return acc.cv();
}

} // namespace rc::trace
