/**
 * @file
 * Pull-based arrival streams for cluster-scale replays.
 *
 * `expandArrivals` materializes the whole trace before the first event
 * fires — O(trace) RSS, which is the wall at the 100M-invocation tier
 * (a 100M-arrival vector is ~1.6 GB before the simulator allocates a
 * single container). ArrivalSource inverts the contract: consumers
 * pull one arrival at a time, so the cluster core holds only the
 * current window's arrivals and RSS is O(window), independent of
 * trace length.
 *
 * Determinism contract: a source must yield exactly the sequence
 * `expandArrivals` would have produced for the same trace — the
 * globally (time, function)-sorted expansion of §7.2 replay
 * semantics. TraceSetArrivalSource guarantees this with a k-way merge
 * over per-function cursors (each function's expansion is already
 * time-sorted, so a min-heap keyed (time, function) reproduces the
 * global sort; ties are identical values, so heap order among equals
 * cannot matter). The streaming-vs-materialized golden in
 * tests/test_sharded.cc pins the equivalence.
 */

#ifndef RC_TRACE_ARRIVAL_SOURCE_HH_
#define RC_TRACE_ARRIVAL_SOURCE_HH_

#include <cstdint>
#include <vector>

#include "sim/time.hh"
#include "trace/replay.hh"
#include "trace/trace_set.hh"
#include "workload/types.hh"

namespace rc::workload {
class Catalog;
}

namespace rc::trace {

struct WorkloadTraceConfig;

/** A pull-based, time-ordered stream of invocation arrivals. */
class ArrivalSource
{
  public:
    virtual ~ArrivalSource() = default;

    /**
     * Latest arrival instant the stream will ever yield (the replay
     * horizon). Known up front — fault/network/recovery schedules are
     * drawn against it before the first arrival is consumed. 0 for an
     * empty stream.
     */
    virtual sim::Tick horizon() const = 0;

    /** Total arrivals the stream yields, known up front. */
    virtual std::uint64_t total() const = 0;

    /** True once every arrival has been consumed. */
    virtual bool done() const = 0;

    /** Next arrival; only valid while !done(). */
    virtual const Arrival& peek() const = 0;

    /** Consume the arrival returned by peek(). */
    virtual void pop() = 0;
};

/**
 * Adapter over an already-materialized, (time, function)-sorted
 * arrival vector. Non-owning: the vector must outlive the source.
 * This is the compatibility shim behind
 * `ShardedCluster::run(const std::vector<Arrival>&)`.
 */
class VectorArrivalSource final : public ArrivalSource
{
  public:
    explicit VectorArrivalSource(const std::vector<Arrival>& arrivals);

    sim::Tick horizon() const override { return _horizon; }
    std::uint64_t total() const override { return _arrivals->size(); }
    bool done() const override { return _next >= _arrivals->size(); }
    const Arrival& peek() const override { return (*_arrivals)[_next]; }
    void pop() override { ++_next; }

    /** Rewind to the first arrival (re-run the same stream). */
    void reset() { _next = 0; }

  private:
    const std::vector<Arrival>* _arrivals;
    std::size_t _next = 0;
    sim::Tick _horizon = 0;
};

/**
 * Streams the §7.2 expansion of a minute-bucketed TraceSet without
 * ever materializing it: one cursor per function walks that
 * function's buckets (single invocation at the minute start, multiple
 * spread at kMinute/count), and a binary min-heap keyed
 * (time, function) merges the per-function streams into the exact
 * order `expandArrivals` + std::sort would produce. Owns the
 * TraceSet, so it doubles as the generator adapter (move a freshly
 * generated set in). Memory is O(functions), not O(invocations).
 */
class TraceSetArrivalSource final : public ArrivalSource
{
  public:
    explicit TraceSetArrivalSource(TraceSet set);

    sim::Tick horizon() const override { return _horizon; }
    std::uint64_t total() const override { return _total; }
    bool done() const override { return _heap.empty(); }
    const Arrival& peek() const override { return _current; }
    void pop() override;

    /** Rewind to the first arrival (re-run the same stream). */
    void reset();

    const TraceSet& traceSet() const { return _set; }

  private:
    /** One function's position in its own expansion. */
    struct Cursor
    {
        sim::Tick time = 0;
        workload::FunctionId function = workload::kInvalidFunction;
        std::uint32_t trace = 0;  ///< index into _set.traces()
        std::uint32_t minute = 0; ///< current bucket
        std::uint32_t index = 0;  ///< arrival index within the bucket
    };

    /** Min-heap order on (time, function). */
    static bool cursorAfter(const Cursor& a, const Cursor& b);

    /** Position `cur` at bucket >= minute; false when exhausted. */
    bool seekBucket(Cursor& cur, std::uint32_t minute) const;

    /** Step `cur` to its next arrival; false when exhausted. */
    bool advance(Cursor& cur) const;

    void refreshCurrent();

    TraceSet _set;
    std::vector<Cursor> _heap;
    Arrival _current;
    sim::Tick _horizon = 0;
    std::uint64_t _total = 0;
};

/**
 * Generator adapter: draw an Azure-like workload and stream it.
 * Equivalent to expandArrivals(generateAzureLike(catalog, config))
 * without the O(invocations) vector.
 */
TraceSetArrivalSource makeAzureLikeSource(const workload::Catalog& catalog,
                                          const WorkloadTraceConfig& config);

} // namespace rc::trace

#endif // RC_TRACE_ARRIVAL_SOURCE_HH_
