/**
 * @file
 * Import/export of traces in the Azure Functions dataset format.
 *
 * The public Azure Functions 2019 dataset ships CSV files with one
 * row per function: three hash columns (owner, app, function), a
 * trigger column, then one invocation-count column per minute of the
 * day. This module reads that shape — so real dataset files can
 * drive the simulator when available — and writes synthetic trace
 * sets back out in the same shape for external tooling.
 *
 * Mapping: row k of the CSV drives function id k of the catalog;
 * surplus rows are ignored, missing rows leave functions silent.
 */

#ifndef RC_TRACE_AZURE_IO_HH_
#define RC_TRACE_AZURE_IO_HH_

#include <iosfwd>

#include "trace/trace_set.hh"
#include "workload/catalog.hh"

namespace rc::trace {

/**
 * Parse an Azure-format CSV into a trace set over @p minutes buckets
 * (rows longer than the horizon are truncated, shorter ones padded).
 *
 * @throws std::runtime_error on malformed rows (non-numeric counts,
 *         missing columns).
 */
TraceSet loadAzureCsv(std::istream& in, const workload::Catalog& catalog,
                      std::size_t minutes);

/**
 * Write @p set in Azure CSV shape. Hash columns carry the catalog's
 * short names (owner/app duplicated); the trigger column is "sim".
 */
void saveAzureCsv(std::ostream& out, const TraceSet& set,
                  const workload::Catalog& catalog);

} // namespace rc::trace

#endif // RC_TRACE_AZURE_IO_HH_
