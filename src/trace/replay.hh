/**
 * @file
 * Expansion of minute-bucketed traces into concrete arrival events.
 *
 * Implements the replay semantics of §7.2 verbatim: one invocation in
 * a minute bucket is injected at the beginning of the minute; for
 * multiple invocations the bucket is distributed evenly throughout
 * the minute (the FaaSCache methodology the paper cites).
 */

#ifndef RC_TRACE_REPLAY_HH_
#define RC_TRACE_REPLAY_HH_

#include <vector>

#include "sim/time.hh"
#include "trace/trace_set.hh"
#include "workload/types.hh"

namespace rc::trace {

/** One invocation arrival. */
struct Arrival
{
    sim::Tick time = 0;
    workload::FunctionId function = workload::kInvalidFunction;

    bool
    operator<(const Arrival& other) const
    {
        if (time != other.time)
            return time < other.time;
        return function < other.function;
    }
};

/** Expand a trace set into a time-sorted arrival list. */
std::vector<Arrival> expandArrivals(const TraceSet& set);

/**
 * Coefficient of variation of the inter-arrival times of the merged
 * arrival stream; this is the "IAT CV" knob of §7.6. Returns 0 for
 * fewer than three arrivals.
 */
double iatCv(const std::vector<Arrival>& arrivals);

/** Mean inter-arrival time of the merged stream in ticks. */
sim::Tick meanIat(const std::vector<Arrival>& arrivals);

} // namespace rc::trace

#endif // RC_TRACE_REPLAY_HH_
