/**
 * @file
 * Invocation traces in the Azure Functions dataset format.
 *
 * The Azure Functions traces the paper replays (§7.1) record, per
 * function, the number of invocations in each one-minute bucket of
 * the day. TraceSet keeps exactly that representation: one count
 * vector per function over a common horizon. Replay expansion to
 * concrete arrival instants follows §7.2: a single invocation in a
 * bucket is injected at the beginning of the minute; multiple
 * invocations are distributed evenly throughout the minute.
 */

#ifndef RC_TRACE_TRACE_SET_HH_
#define RC_TRACE_TRACE_SET_HH_

#include <cstdint>
#include <vector>

#include "sim/time.hh"
#include "workload/types.hh"

namespace rc::trace {

/** Per-minute invocation counts of one function. */
struct FunctionTrace
{
    workload::FunctionId function = workload::kInvalidFunction;
    std::vector<std::uint32_t> perMinute;

    /** Total invocations in the trace. */
    std::uint64_t totalInvocations() const;

    /** Number of minutes with at least one invocation. */
    std::size_t activeMinutes() const;
};

/** A set of per-function minute traces over a shared horizon. */
class TraceSet
{
  public:
    /** @param minutes Horizon length in minutes (> 0). */
    explicit TraceSet(std::size_t minutes);

    /** Add a function trace; it is zero-padded/truncated to the horizon. */
    void add(FunctionTrace trace);

    std::size_t durationMinutes() const { return _minutes; }
    sim::Tick durationTicks() const
    {
        return static_cast<sim::Tick>(_minutes) * sim::kMinute;
    }

    const std::vector<FunctionTrace>& traces() const { return _traces; }
    std::size_t functionCount() const { return _traces.size(); }

    /** Total invocations across all functions. */
    std::uint64_t totalInvocations() const;

    /** Per-minute total arrivals across all functions (Fig. 10 top). */
    std::vector<std::uint64_t> arrivalsPerMinute() const;

  private:
    std::size_t _minutes;
    std::vector<FunctionTrace> _traces;
};

} // namespace rc::trace

#endif // RC_TRACE_TRACE_SET_HH_
