#include "trace/arrival_source.hh"

#include <algorithm>

#include "trace/generator.hh"

namespace rc::trace {

VectorArrivalSource::VectorArrivalSource(
    const std::vector<Arrival>& arrivals)
    : _arrivals(&arrivals)
{
    for (const Arrival& arrival : arrivals)
        _horizon = std::max(_horizon, arrival.time);
}

namespace {

/**
 * Last arrival instant of a bucket with @p count invocations starting
 * at @p minuteStart. Uniform over both replay cases: count == 1 makes
 * the step term vanish, leaving the minute start.
 */
sim::Tick
bucketLastArrival(sim::Tick minuteStart, std::uint32_t count)
{
    const sim::Tick step = sim::kMinute / static_cast<sim::Tick>(count);
    return minuteStart + static_cast<sim::Tick>(count - 1) * step;
}

sim::Tick
bucketArrival(sim::Tick minuteStart, std::uint32_t count,
              std::uint32_t index)
{
    if (count == 1)
        return minuteStart;
    const sim::Tick step = sim::kMinute / static_cast<sim::Tick>(count);
    return minuteStart + static_cast<sim::Tick>(index) * step;
}

} // namespace

TraceSetArrivalSource::TraceSetArrivalSource(TraceSet set)
    : _set(std::move(set))
{
    for (const FunctionTrace& trace : _set.traces()) {
        _total += trace.totalInvocations();
        for (std::size_t minute = trace.perMinute.size(); minute > 0;
             --minute) {
            const std::uint32_t count = trace.perMinute[minute - 1];
            if (count == 0)
                continue;
            const sim::Tick minuteStart =
                static_cast<sim::Tick>(minute - 1) * sim::kMinute;
            _horizon =
                std::max(_horizon, bucketLastArrival(minuteStart, count));
            break;
        }
    }
    reset();
}

bool
TraceSetArrivalSource::cursorAfter(const Cursor& a, const Cursor& b)
{
    if (a.time != b.time)
        return a.time > b.time;
    return a.function > b.function;
}

bool
TraceSetArrivalSource::seekBucket(Cursor& cur, std::uint32_t minute) const
{
    const FunctionTrace& trace = _set.traces()[cur.trace];
    const std::size_t minutes = trace.perMinute.size();
    for (std::size_t m = minute; m < minutes; ++m) {
        const std::uint32_t count = trace.perMinute[m];
        if (count == 0)
            continue;
        cur.minute = static_cast<std::uint32_t>(m);
        cur.index = 0;
        cur.time = bucketArrival(
            static_cast<sim::Tick>(m) * sim::kMinute, count, 0);
        return true;
    }
    return false;
}

bool
TraceSetArrivalSource::advance(Cursor& cur) const
{
    const FunctionTrace& trace = _set.traces()[cur.trace];
    const std::uint32_t count = trace.perMinute[cur.minute];
    if (cur.index + 1 < count) {
        ++cur.index;
        cur.time = bucketArrival(
            static_cast<sim::Tick>(cur.minute) * sim::kMinute, count,
            cur.index);
        return true;
    }
    return seekBucket(cur, cur.minute + 1);
}

void
TraceSetArrivalSource::refreshCurrent()
{
    if (!_heap.empty())
        _current = Arrival{_heap.front().time, _heap.front().function};
}

void
TraceSetArrivalSource::pop()
{
    std::pop_heap(_heap.begin(), _heap.end(), cursorAfter);
    Cursor cur = _heap.back();
    _heap.pop_back();
    if (advance(cur)) {
        _heap.push_back(cur);
        std::push_heap(_heap.begin(), _heap.end(), cursorAfter);
    }
    refreshCurrent();
}

void
TraceSetArrivalSource::reset()
{
    _heap.clear();
    const auto& traces = _set.traces();
    _heap.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        Cursor cur;
        cur.trace = static_cast<std::uint32_t>(i);
        cur.function = traces[i].function;
        if (seekBucket(cur, 0))
            _heap.push_back(cur);
    }
    std::make_heap(_heap.begin(), _heap.end(), cursorAfter);
    refreshCurrent();
}

TraceSetArrivalSource
makeAzureLikeSource(const workload::Catalog& catalog,
                    const WorkloadTraceConfig& config)
{
    return TraceSetArrivalSource(generateAzureLike(catalog, config));
}

} // namespace rc::trace
