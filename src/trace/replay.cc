#include "trace/replay.hh"

#include <algorithm>

#include "stats/accumulator.hh"

namespace rc::trace {

std::vector<Arrival>
expandArrivals(const TraceSet& set)
{
    std::vector<Arrival> arrivals;
    arrivals.reserve(set.totalInvocations());
    for (const auto& trace : set.traces()) {
        for (std::size_t minute = 0; minute < trace.perMinute.size();
             ++minute) {
            const std::uint32_t count = trace.perMinute[minute];
            if (count == 0)
                continue;
            const sim::Tick minuteStart =
                static_cast<sim::Tick>(minute) * sim::kMinute;
            if (count == 1) {
                arrivals.push_back(Arrival{minuteStart, trace.function});
                continue;
            }
            // Evenly distribute: invocation i at start + i * (60s / count).
            const sim::Tick step = sim::kMinute / static_cast<sim::Tick>(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                arrivals.push_back(Arrival{
                    minuteStart + static_cast<sim::Tick>(i) * step,
                    trace.function});
            }
        }
    }
    std::sort(arrivals.begin(), arrivals.end());
    return arrivals;
}

double
iatCv(const std::vector<Arrival>& arrivals)
{
    if (arrivals.size() < 3)
        return 0.0;
    stats::Accumulator acc;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        acc.add(static_cast<double>(arrivals[i].time - arrivals[i - 1].time));
    }
    return acc.cv();
}

sim::Tick
meanIat(const std::vector<Arrival>& arrivals)
{
    if (arrivals.size() < 2)
        return 0;
    const sim::Tick span = arrivals.back().time - arrivals.front().time;
    return span / static_cast<sim::Tick>(arrivals.size() - 1);
}

} // namespace rc::trace
