/**
 * @file
 * Unified cost model (§4.2, Eqs. 1, 5, 6).
 *
 * The unified cost is C = alpha * C_startup + (1 - alpha) * C_memory
 * with a knob alpha in (0, 1). The keep-alive bound beta(k) of Eq. 6
 * caps how long a type-k container may stay idle by requiring its
 * idle memory cost not to exceed the startup latency it would save:
 *
 *     beta(k) = alpha * t(k) / ((1 - alpha) * m(k)).
 *
 * Unit calibration: C_startup is in seconds and C_memory in MB*s,
 * which makes the two contributions comparable at the paper's
 * alpha = 0.996 (Fig. 11a shows both parts clearly). For beta, m(k)
 * is interpreted in GB — equivalently, a fixed 1000x exchange rate
 * between a second of startup latency and an MB*s of residency is
 * folded into the bound — which lands the per-layer TTL upper bounds
 * in the minutes range the paper's keep-alive windows occupy (e.g.,
 * ~34 min for IR-Py's 412 MB user layer, ~1 h for a 10 MB Bare
 * container).
 */

#ifndef RC_CORE_COST_MODEL_HH_
#define RC_CORE_COST_MODEL_HH_

#include "sim/time.hh"
#include "workload/function_profile.hh"

namespace rc::core {

/** Cost-model parameters. */
struct CostConfig
{
    /** Knob alpha in (0,1); paper default 0.996 (Fig. 11a). */
    double alpha = 0.996;

    /**
     * Memory unit of m(k) in the beta bound, in MB. The paper leaves
     * Eq. 6's units implicit; this constant is the latency-vs-
     * residency exchange rate (seconds of startup latency that one
     * unit-second of idle memory is worth). The default is calibrated
     * so that per-layer TTL upper bounds land in the paper's
     * minutes range while total memory waste stays below every
     * baseline (§7.2 shapes).
     */
    double betaMemoryUnitMb = 160.0;

    // ---- cross-node hop latencies (sharded execution) ----------------
    //
    // The minimum of these three is the conservative-synchronization
    // lookahead of the sharded cluster core: no effect started on one
    // node can reach another node sooner than the cheapest hop, so
    // shards may safely run that far ahead of each other between
    // barriers (see DESIGN.md §11).

    /** Scheduler-to-node dispatch hop (placement delivery), ms. */
    double dispatchHopMillis = 25.0;
    /** Crash-detection-to-reroute hop (failover), ms. */
    double failoverHopMillis = 50.0;
    /** Generic node-to-node network hop, ms. */
    double networkHopMillis = 5.0;
};

/** The Eq. 6 bound and Eq. 1 aggregation. */
class CostModel
{
  public:
    explicit CostModel(CostConfig config = {});

    double alpha() const { return _config.alpha; }

    /**
     * beta(k) for layer @p layer of @p profile: the maximum time the
     * layer may sit idle before its memory cost exceeds the startup
     * latency it saves. t(k) is the layer's stage-install latency;
     * m(k) the idle footprint at that layer.
     */
    sim::Tick beta(const workload::FunctionProfile& profile,
                   workload::Layer layer) const;

    /**
     * beta from raw stage latency and footprint; used for shared
     * layers whose t/m are averaged across the functions that can
     * hit them (Eq. 5).
     */
    sim::Tick betaFromRaw(double tSeconds, double mMb) const;

    /**
     * Eq. 7: keep-alive TTL = min(predicted IAT, beta(k)).
     * @param iat Predicted inter-arrival time; negative means "no
     *            estimate", in which case beta alone bounds the TTL.
     */
    sim::Tick ttl(const workload::FunctionProfile& profile,
                  workload::Layer layer, sim::Tick iat) const;

    /**
     * Eq. 1: unified cost from total startup latency (seconds) and
     * total memory waste (MB*s).
     */
    double unifiedCost(double startupSeconds, double wasteMbSeconds) const;

    /**
     * Conservative lookahead for sharded execution: the minimum
     * cross-node hop latency in ticks (at least one tick). Shards of
     * a partitioned cluster may run this far past the last barrier
     * without missing a cross-shard effect.
     */
    sim::Tick crossShardLookahead() const;

  private:
    CostConfig _config;
};

} // namespace rc::core

#endif // RC_CORE_COST_MODEL_HH_
