/**
 * @file
 * Sharing-aware Poisson arrival modeling (§5.1, Eqs. 2-4).
 *
 * Each function is modeled as Poisson(lambda_f); for a container type
 * k the hit process is the superposition of the member functions'
 * processes, again Poisson with lambda(k) = sum of lambda_f over
 * F(k) (Eq. 2). Inter-arrival times of a Poisson process are
 * exponential, so given a confidence quantile p the predicted IAT is
 * the exponential quantile function (Eq. 4):
 *
 *     IAT(k, p) = -ln(1 - p) / lambda(k).
 */

#ifndef RC_CORE_POISSON_MODEL_HH_
#define RC_CORE_POISSON_MODEL_HH_

#include <optional>
#include <vector>

#include "sim/time.hh"

namespace rc::core {

/** Sum per-function rates into a compound rate (Eq. 2); skips gaps. */
double compoundRate(const std::vector<std::optional<double>>& rates);

/**
 * Exponential CDF at @p x seconds for rate @p lambda (Eq. 3).
 * Returns 0 for x < 0.
 */
double exponentialCdf(double x, double lambda);

/**
 * Quantile-p inter-arrival time in seconds for rate @p lambda
 * (Eq. 4). Requires lambda > 0 and 0 <= p < 1.
 */
double quantileIatSeconds(double lambda, double p);

/** Same as quantileIatSeconds but returned in ticks. */
sim::Tick quantileIat(double lambda, double p);

} // namespace rc::core

#endif // RC_CORE_POISSON_MODEL_HH_
