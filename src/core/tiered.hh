/**
 * @file
 * Tiered caching (§8, "RainbowCake with tiered caching").
 *
 * The paper sketches placing different layers in different cache
 * tiers: frequently-hit or heavy layers stay in DRAM, while the
 * lighter shareable layers (Lang/Bare) can be parked in cheaper
 * non-volatile memory (NVM). The model here captures the two effects
 * that matter for the trade-off:
 *
 *   * hits on NVM-resident layers pay an extra fetch latency before
 *     the remaining initialization can start;
 *   * NVM residency is cheaper, so Lang/Bare idle time is charged at
 *     a fraction of its DRAM cost.
 *
 * TieredCachePolicy is a decorator like CheckpointPolicy: it forwards
 * all decisions to the wrapped policy and only injects the NVM fetch
 * penalty; pricedWasteMbSeconds() reprices a run's waste log under
 * the tiered cost model.
 */

#ifndef RC_CORE_TIERED_HH_
#define RC_CORE_TIERED_HH_

#include <memory>

#include "policy/policy.hh"
#include "stats/interval_log.hh"

namespace rc::core {

/** Knobs of the tiered-cache model. */
struct TieredConfig
{
    /** Fetch latency added to every partial (Lang/Bare) start. */
    sim::Tick nvmFetchLatency = 30 * sim::kMillisecond;
    /** NVM residency cost relative to DRAM (0 < factor <= 1). */
    double nvmCostFactor = 0.2;
};

/** Decorator adding NVM placement of shareable layers. */
class TieredCachePolicy : public policy::Policy
{
  public:
    TieredCachePolicy(std::unique_ptr<policy::Policy> base,
                      TieredConfig config = {});

    std::string name() const override;
    void attach(policy::PlatformView& view) override;
    void onArrival(workload::FunctionId function) override;
    void
    onStartupResolved(const policy::StartupObservation& obs) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    policy::IdleDecision
    onIdleExpired(const container::Container& c) override;
    bool layerSharingEnabled() const override;
    bool
    allowForeignUserContainer(const container::Container& c,
                              workload::FunctionId f) const override;
    sim::Tick
    foreignUserStartupLatency(const container::Container& c,
                              workload::FunctionId f) const override;
    std::vector<container::ContainerId>
    rankEvictionVictims(
        const std::vector<const container::Container*>& idle) override;
    double partialStartLatencyFactor() const override;
    sim::Tick partialStartLatencyBias() const override;
    bool forkSharedLayers() const override;
    sim::Tick forkLatency() const override;
    double coldStartFactor() const override;
    double
    auxiliaryMemoryMb(const workload::FunctionProfile& p) const override;

    const TieredConfig& config() const { return _config; }

  private:
    std::unique_ptr<policy::Policy> _base;
    TieredConfig _config;
};

/**
 * Reprice a run's waste under the tiered model: User-layer intervals
 * stay at DRAM cost, Lang/Bare intervals are charged at
 * @p config.nvmCostFactor of their MB*s.
 */
double pricedWasteMbSeconds(const stats::IntervalLog& waste,
                            const TieredConfig& config);

} // namespace rc::core

#endif // RC_CORE_TIERED_HH_
