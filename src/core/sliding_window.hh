/**
 * @file
 * Sliding window of recent invocation timestamps (§5.1).
 *
 * The History Recorder fits each function's invocation pattern over
 * its latest n invocations: with j the current timestamp and j' the
 * stalest timestamp in the window, the Poisson rate parameter is
 * lambda_f = n / (j - j'). The window size n is the paper's third
 * tunable (default 6, sensitivity in Fig. 11c).
 */

#ifndef RC_CORE_SLIDING_WINDOW_HH_
#define RC_CORE_SLIDING_WINDOW_HH_

#include <deque>
#include <optional>

#include "sim/time.hh"

namespace rc::core {

/** Fixed-capacity window of arrival timestamps with rate estimation. */
class SlidingWindow
{
  public:
    /** @param capacity Window size n (>= 1). */
    explicit SlidingWindow(std::size_t capacity = 6);

    /** Record an arrival at @p when (non-decreasing). */
    void push(sim::Tick when);

    /** Number of recorded arrivals currently in the window. */
    std::size_t size() const { return _window.size(); }

    /** Window capacity n. */
    std::size_t capacity() const { return _capacity; }

    /** Stalest timestamp j' in the window; nullopt when empty. */
    std::optional<sim::Tick> stalest() const;

    /** Most recent timestamp; nullopt when empty. */
    std::optional<sim::Tick> newest() const;

    /**
     * Rate estimate lambda = size / (now - j') in events per second.
     * Returns nullopt when fewer than two arrivals were recorded or
     * when the elapsed span is zero (burst within one tick).
     */
    std::optional<double> ratePerSecond(sim::Tick now) const;

    /** Drop all recorded arrivals. */
    void reset();

  private:
    std::size_t _capacity;
    std::deque<sim::Tick> _window;
};

} // namespace rc::core

#endif // RC_CORE_SLIDING_WINDOW_HH_
