/**
 * @file
 * The History Recorder (§3.2, §5.1).
 *
 * Keeps one sliding window per function and answers the three
 * sharing-aware rate queries of Eq. 2:
 *   * User layer: lambda_f of the single owning function;
 *   * Lang layer: the sum of lambda_f over all functions of that
 *     language (any of them can hit the Lang container);
 *   * Bare layer: the sum over all functions (Bare containers are
 *     compatible with everything).
 *
 * The paper notes the recorder's footprint is trivial (250 MB per
 * million functions, §6.2); here each function costs one deque of at
 * most n timestamps.
 */

#ifndef RC_CORE_HISTORY_RECORDER_HH_
#define RC_CORE_HISTORY_RECORDER_HH_

#include <optional>
#include <vector>

#include "core/sliding_window.hh"
#include "workload/catalog.hh"

namespace rc::core {

/** Per-function sliding windows + compound rate queries. */
class HistoryRecorder
{
  public:
    /**
     * @param catalog     Deployed functions (defines language groups).
     * @param windowSize  Sliding-window size n (paper default: 6).
     */
    HistoryRecorder(const workload::Catalog& catalog,
                    std::size_t windowSize = 6);

    /** Record an invocation arrival of @p function at @p when. */
    void recordArrival(workload::FunctionId function, sim::Tick when);

    /** lambda_f in events/second; nullopt without enough history. */
    std::optional<double> functionRate(workload::FunctionId function,
                                       sim::Tick now) const;

    /** Compound rate of all functions of @p language (Lang layer). */
    double languageRate(workload::Language language, sim::Tick now) const;

    /** Compound rate of all functions (Bare layer). */
    double globalRate(sim::Tick now) const;

    /** Number of arrivals ever recorded for @p function. */
    std::uint64_t arrivals(workload::FunctionId function) const;

    /** Window size n. */
    std::size_t windowSize() const { return _windowSize; }

  private:
    const workload::Catalog& _catalog;
    std::size_t _windowSize;
    std::vector<SlidingWindow> _windows;
    std::vector<std::uint64_t> _arrivals;
};

} // namespace rc::core

#endif // RC_CORE_HISTORY_RECORDER_HH_
