#include "core/cost_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rc::core {

CostModel::CostModel(CostConfig config) : _config(config)
{
    if (config.alpha <= 0.0 || config.alpha >= 1.0)
        sim::fatal("CostModel: alpha must lie strictly inside (0,1)");
}

sim::Tick
CostModel::beta(const workload::FunctionProfile& profile,
                workload::Layer layer) const
{
    if (layer == workload::Layer::None)
        return 0;
    return betaFromRaw(sim::toSeconds(profile.stageLatency(layer)),
                       profile.memoryAtLayer(layer));
}

sim::Tick
CostModel::betaFromRaw(double tSeconds, double mMb) const
{
    const double mUnits = mMb / _config.betaMemoryUnitMb;
    if (mUnits <= 0.0)
        return 0;
    const double betaSeconds =
        _config.alpha * tSeconds / ((1.0 - _config.alpha) * mUnits);
    return sim::fromSeconds(betaSeconds);
}

sim::Tick
CostModel::ttl(const workload::FunctionProfile& profile,
               workload::Layer layer, sim::Tick iat) const
{
    const sim::Tick bound = beta(profile, layer);
    if (iat < 0)
        return bound;
    return std::min(iat, bound);
}

double
CostModel::unifiedCost(double startupSeconds, double wasteMbSeconds) const
{
    return _config.alpha * startupSeconds +
           (1.0 - _config.alpha) * wasteMbSeconds;
}

sim::Tick
CostModel::crossShardLookahead() const
{
    const double hopMillis =
        std::min({_config.dispatchHopMillis, _config.failoverHopMillis,
                  _config.networkHopMillis});
    return std::max<sim::Tick>(1, sim::fromMillis(hopMillis));
}

} // namespace rc::core
