#include "core/poisson_model.hh"

#include <cmath>
#include <stdexcept>

namespace rc::core {

double
compoundRate(const std::vector<std::optional<double>>& rates)
{
    double total = 0.0;
    for (const auto& rate : rates) {
        if (rate)
            total += *rate;
    }
    return total;
}

double
exponentialCdf(double x, double lambda)
{
    if (lambda <= 0.0)
        throw std::invalid_argument("exponentialCdf: lambda must be > 0");
    if (x < 0.0)
        return 0.0;
    return 1.0 - std::exp(-lambda * x);
}

double
quantileIatSeconds(double lambda, double p)
{
    if (lambda <= 0.0)
        throw std::invalid_argument("quantileIatSeconds: lambda must be > 0");
    if (p < 0.0 || p >= 1.0)
        throw std::invalid_argument("quantileIatSeconds: p outside [0,1)");
    return -std::log(1.0 - p) / lambda;
}

sim::Tick
quantileIat(double lambda, double p)
{
    return sim::fromSeconds(quantileIatSeconds(lambda, p));
}

} // namespace rc::core
