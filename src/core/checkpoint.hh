/**
 * @file
 * Checkpoint/restore integration (§7.8).
 *
 * The paper demonstrates RainbowCake composing with an orthogonal
 * technique: Docker/CRIU checkpointing. Containers are restored from
 * checkpoint files instead of initializing from scratch, cutting
 * startup latency (-36% average in the paper) at the cost of caching
 * checkpoint images in memory (+15% memory waste).
 *
 * CheckpointPolicy is a transparent decorator over any base policy:
 * it forwards every decision to the wrapped policy and only overrides
 * the cold-start latency factor and the per-container auxiliary
 * (checkpoint image) memory.
 */

#ifndef RC_CORE_CHECKPOINT_HH_
#define RC_CORE_CHECKPOINT_HH_

#include <memory>

#include "policy/policy.hh"

namespace rc::core {

/** Knobs of the checkpoint integration. */
struct CheckpointConfig
{
    /** Cold-init latency multiplier when restoring (restore speed). */
    double restoreFactor = 0.55;
    /** Checkpoint image size as a fraction of the user footprint. */
    double imageMemoryFraction = 0.12;
};

/** Decorator adding checkpoint/restore to any policy. */
class CheckpointPolicy : public policy::Policy
{
  public:
    CheckpointPolicy(std::unique_ptr<policy::Policy> base,
                     CheckpointConfig config = {});

    std::string name() const override;
    void attach(policy::PlatformView& view) override;
    void onArrival(workload::FunctionId function) override;
    void
    onStartupResolved(const policy::StartupObservation& obs) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    policy::IdleDecision
    onIdleExpired(const container::Container& c) override;
    bool layerSharingEnabled() const override;
    bool
    allowForeignUserContainer(const container::Container& c,
                              workload::FunctionId f) const override;
    sim::Tick
    foreignUserStartupLatency(const container::Container& c,
                              workload::FunctionId f) const override;
    std::vector<container::ContainerId>
    rankEvictionVictims(
        const std::vector<const container::Container*>& idle) override;
    double partialStartLatencyFactor() const override;
    sim::Tick partialStartLatencyBias() const override;
    bool forkSharedLayers() const override;
    sim::Tick forkLatency() const override;

    // The checkpoint-specific overrides:
    double coldStartFactor() const override;
    double
    auxiliaryMemoryMb(const workload::FunctionProfile& p) const override;

  private:
    std::unique_ptr<policy::Policy> _base;
    CheckpointConfig _config;
};

} // namespace rc::core

#endif // RC_CORE_CHECKPOINT_HH_
