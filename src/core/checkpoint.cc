#include "core/checkpoint.hh"

#include "sim/logging.hh"

namespace rc::core {

CheckpointPolicy::CheckpointPolicy(std::unique_ptr<policy::Policy> base,
                                   CheckpointConfig config)
    : _base(std::move(base)), _config(config)
{
    if (!_base)
        sim::fatal("CheckpointPolicy: base policy must not be null");
    if (config.restoreFactor <= 0.0 || config.restoreFactor > 1.0)
        sim::fatal("CheckpointPolicy: restore factor outside (0,1]");
    if (config.imageMemoryFraction < 0.0)
        sim::fatal("CheckpointPolicy: negative image memory fraction");
}

std::string
CheckpointPolicy::name() const
{
    return _base->name() + " + checkpoint";
}

void
CheckpointPolicy::attach(policy::PlatformView& view)
{
    Policy::attach(view);
    _base->attach(view);
}

void
CheckpointPolicy::onArrival(workload::FunctionId function)
{
    _base->onArrival(function);
}

void
CheckpointPolicy::onStartupResolved(const policy::StartupObservation& obs)
{
    _base->onStartupResolved(obs);
}

sim::Tick
CheckpointPolicy::keepAliveTtl(const container::Container& c)
{
    return _base->keepAliveTtl(c);
}

policy::IdleDecision
CheckpointPolicy::onIdleExpired(const container::Container& c)
{
    return _base->onIdleExpired(c);
}

bool
CheckpointPolicy::layerSharingEnabled() const
{
    return _base->layerSharingEnabled();
}

bool
CheckpointPolicy::allowForeignUserContainer(
    const container::Container& c, workload::FunctionId f) const
{
    return _base->allowForeignUserContainer(c, f);
}

sim::Tick
CheckpointPolicy::foreignUserStartupLatency(
    const container::Container& c, workload::FunctionId f) const
{
    return _base->foreignUserStartupLatency(c, f);
}

std::vector<container::ContainerId>
CheckpointPolicy::rankEvictionVictims(
    const std::vector<const container::Container*>& idle)
{
    return _base->rankEvictionVictims(idle);
}

bool
CheckpointPolicy::forkSharedLayers() const
{
    return _base->forkSharedLayers();
}

sim::Tick
CheckpointPolicy::forkLatency() const
{
    return _base->forkLatency();
}

double
CheckpointPolicy::partialStartLatencyFactor() const
{
    // Partial starts restore the missing layers from checkpoint
    // images instead of re-initializing them, so the restore speedup
    // applies to them as well as to full cold starts.
    return _config.restoreFactor * _base->partialStartLatencyFactor();
}

sim::Tick
CheckpointPolicy::partialStartLatencyBias() const
{
    return _base->partialStartLatencyBias();
}

double
CheckpointPolicy::coldStartFactor() const
{
    return _config.restoreFactor * _base->coldStartFactor();
}

double
CheckpointPolicy::auxiliaryMemoryMb(
    const workload::FunctionProfile& p) const
{
    return _config.imageMemoryFraction * p.memoryAtLayer(
               workload::Layer::User) + _base->auxiliaryMemoryMb(p);
}

} // namespace rc::core
