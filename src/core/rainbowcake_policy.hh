/**
 * @file
 * RainbowCake: layer-wise, sharing-aware pre-warming and keep-alive.
 *
 * The paper's contribution, assembled from the core pieces:
 *
 *   * Pre-warming (Algorithm 1): every arrival records into the
 *     History Recorder and schedules an asynchronous pre-warm event
 *     one predicted inter-arrival time (Eq. 4, function-specific
 *     Poisson) in the future; the platform skips the pre-warm if warm
 *     capacity already exists at fire time.
 *
 *   * Keep-alive (Algorithm 2): an idle container peels one layer per
 *     expired TTL (User -> Lang -> Bare -> terminated). Each new TTL
 *     is min(IAT(k, p), beta(k)) (Eq. 7), where the IAT prediction of
 *     a shared layer uses the *compound* rate of every function that
 *     could hit it (Eq. 2) and beta bounds idle memory cost by saved
 *     startup latency (Eq. 6).
 *
 *   * Sharing: idle Lang containers serve any same-language function,
 *     idle Bare containers serve anyone (layerSharingEnabled).
 *
 * Ablation knobs reproduce the §7.3 variants: disabling
 * sharing-aware modeling replaces the modeled TTLs with fixed 5/3/2
 * minute windows; disabling layer caching terminates idle User
 * containers on expiry and turns off partial-container sharing.
 */

#ifndef RC_CORE_RAINBOWCAKE_POLICY_HH_
#define RC_CORE_RAINBOWCAKE_POLICY_HH_

#include <array>
#include <string>

#include "core/cost_model.hh"
#include "core/history_recorder.hh"
#include "core/poisson_model.hh"
#include "policy/policy.hh"
#include "workload/catalog.hh"

namespace rc::core {

/** All tunables of RainbowCake (paper defaults, §7.1). */
struct RainbowCakeConfig
{
    /** Cost knob alpha (Fig. 11a; default 0.996). */
    double alpha = 0.996;
    /** Eq. 6 memory-unit calibration (see CostConfig). */
    double betaMemoryUnitMb = 160.0;
    /** IAT confidence quantile p (Fig. 11b; default 0.8). */
    double quantile = 0.8;
    /**
     * Quantile used when scheduling pre-warm events (Algorithm 1
     * estimates "the IAT of the next invocation arrival" without
     * pinning a quantile; the median schedules the pre-warm slightly
     * before the typical arrival, which is what makes it a
     * *pre*-warm).
     */
    double prewarmQuantile = 0.6;
    /** Sliding-window size n (Fig. 11c; default 6). */
    std::size_t windowSize = 6;

    /** Enable pre-warming (Algorithm 1). */
    bool prewarmEnabled = true;

    /** §7.3 ablation: sharing-aware TTL modeling. */
    bool sharingAwareModeling = true;
    /** Fixed TTLs used when sharing-aware modeling is disabled. */
    sim::Tick fixedUserTtl = 5 * sim::kMinute;
    sim::Tick fixedLangTtl = 3 * sim::kMinute;
    sim::Tick fixedBareTtl = 2 * sim::kMinute;

    /** §7.3 ablation: layer-wise caching (false: User-only). */
    bool layerCaching = true;

    /**
     * Whether the shared-layer (Lang/Bare) keep-alive windows apply
     * the quantile-IAT term of Eq. 7 on top of the beta bound. With
     * the compound arrival rates of Eq. 2, the literal min(IAT, beta)
     * makes shared layers live only fractions of a second whenever
     * the platform is busy — which contradicts the burst tolerance
     * the paper reports (§7.6) and the long Lang/Bare windows of
     * Fig. 4. The default keeps shared layers for their full
     * cost-parity window beta(k); set true for the literal Eq. 7.
     */
    bool quantileBoundsSharedLayers = false;

    /**
     * Whether the User-layer keep-alive window of a container that
     * has executed is min(IAT(u,p), beta(u)) or the plain upper
     * bound beta(u) (default; §7.1 sets the upper bounds as the
     * keep-alive TTLs, with Eq. 7 applied at downgrade transitions).
     * Speculative pre-warmed containers are always quantile-bounded.
     */
    bool quantileBoundsUserLayer = false;

    /**
     * Cap on idle shared containers: at most this many idle Lang
     * containers per language and this many idle Bare containers are
     * kept; a container that would downgrade into a full pool is
     * terminated instead. Duplicate idle copies of an identical
     * shareable layer add memory cost without adding reach.
     */
    std::size_t maxIdleSharedPerGroup = 2;

    /**
     * §8 zygote-template mode: serve Lang/Bare hits by forking the
     * shared container (the template stays resident) instead of
     * consuming it. Absorbs concurrent same-language bursts with one
     * template at the cost of the clone's footprint + fork latency.
     */
    bool shareByFork = false;
    /** Fork cost when shareByFork is enabled. */
    sim::Tick forkLatency = 15 * sim::kMillisecond;
};

/** The RainbowCake policy. */
class RainbowCakePolicy : public policy::Policy
{
  public:
    RainbowCakePolicy(const workload::Catalog& catalog,
                      RainbowCakeConfig config = {});

    std::string name() const override { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    void onArrival(workload::FunctionId function) override;
    sim::Tick keepAliveTtl(const container::Container& c) override;
    policy::IdleDecision
    onIdleExpired(const container::Container& c) override;
    bool layerSharingEnabled() const override
    {
        return _config.layerCaching;
    }
    bool forkSharedLayers() const override { return _config.shareByFork; }
    sim::Tick forkLatency() const override { return _config.forkLatency; }

    /**
     * Fault hooks (rc::fault). A container killed by an injected
     * fault is not idle-timeout evidence: the History Recorder only
     * ever learns from arrivals, and retries re-dispatch without
     * re-recording, so these overrides merely count what was lost —
     * tests assert the history of a faulty run matches a fault-free
     * twin fed the same arrival sequence.
     */
    void onContainerFailed(const container::Container& c) override
    {
        (void)c;
        ++_failureKills;
    }
    void onNodeDown(sim::Tick downtime) override
    {
        (void)downtime;
        ++_nodeDownEvents;
    }

    /** Containers lost to injected faults (not policy decisions). */
    std::uint64_t failureKills() const { return _failureKills; }
    /** Node crashes this policy's node suffered. */
    std::uint64_t nodeDownEvents() const { return _nodeDownEvents; }

    /** The recorder (read access for tests and diagnostics). */
    const HistoryRecorder& history() const { return _history; }

    /** The cost model in use. */
    const CostModel& costModel() const { return _cost; }

    /** Active configuration. */
    const RainbowCakeConfig& config() const { return _config; }

    /**
     * TTL a type-@p layer container of @p function would get right
     * now (exposed so tests can pin Eqs. 4-7 end to end).
     */
    sim::Tick currentTtl(workload::FunctionId function,
                         workload::Layer layer) const;

  private:
    /** Predicted IAT of layer-k hits; negative when no estimate. */
    sim::Tick predictedIat(workload::FunctionId function,
                           workload::Layer layer) const;

    /** beta for a shared layer from per-group averaged t/m (Eq. 5). */
    sim::Tick sharedBeta(workload::Language language,
                         workload::Layer layer) const;

    const workload::Catalog& _catalog;
    RainbowCakeConfig _config;
    CostModel _cost;
    HistoryRecorder _history;
    std::string _name = "RainbowCake";

    /** Per-language average lang-stage latency (s) and footprint (MB). */
    std::array<double, workload::kLanguageCount> _avgLangInitSeconds{};
    std::array<double, workload::kLanguageCount> _avgLangMemoryMb{};
    /** Global average bare-stage latency (s) and footprint (MB). */
    double _avgBareInitSeconds = 0.0;
    double _avgBareMemoryMb = 0.0;

    /** Fault bookkeeping (see onContainerFailed / onNodeDown). */
    std::uint64_t _failureKills = 0;
    std::uint64_t _nodeDownEvents = 0;
};

} // namespace rc::core

#endif // RC_CORE_RAINBOWCAKE_POLICY_HH_
