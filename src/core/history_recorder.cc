#include "core/history_recorder.hh"

#include <stdexcept>

namespace rc::core {

HistoryRecorder::HistoryRecorder(const workload::Catalog& catalog,
                                 std::size_t windowSize)
    : _catalog(catalog), _windowSize(windowSize),
      _windows(catalog.size(), SlidingWindow(windowSize)),
      _arrivals(catalog.size(), 0)
{
}

void
HistoryRecorder::recordArrival(workload::FunctionId function, sim::Tick when)
{
    if (function >= _windows.size())
        throw std::out_of_range("HistoryRecorder: unknown function");
    _windows[function].push(when);
    ++_arrivals[function];
}

std::optional<double>
HistoryRecorder::functionRate(workload::FunctionId function,
                              sim::Tick now) const
{
    if (function >= _windows.size())
        throw std::out_of_range("HistoryRecorder: unknown function");
    return _windows[function].ratePerSecond(now);
}

double
HistoryRecorder::languageRate(workload::Language language,
                              sim::Tick now) const
{
    double total = 0.0;
    for (const auto& profile : _catalog) {
        if (profile.language() != language)
            continue;
        if (auto rate = _windows[profile.id()].ratePerSecond(now))
            total += *rate;
    }
    return total;
}

double
HistoryRecorder::globalRate(sim::Tick now) const
{
    double total = 0.0;
    for (const auto& window : _windows) {
        if (auto rate = window.ratePerSecond(now))
            total += *rate;
    }
    return total;
}

std::uint64_t
HistoryRecorder::arrivals(workload::FunctionId function) const
{
    if (function >= _arrivals.size())
        throw std::out_of_range("HistoryRecorder: unknown function");
    return _arrivals[function];
}

} // namespace rc::core
