#include "core/sliding_window.hh"

#include "sim/logging.hh"

namespace rc::core {

SlidingWindow::SlidingWindow(std::size_t capacity) : _capacity(capacity)
{
    if (capacity == 0)
        sim::fatal("SlidingWindow: capacity must be >= 1");
}

void
SlidingWindow::push(sim::Tick when)
{
    if (!_window.empty() && when < _window.back())
        sim::panic("SlidingWindow::push: timestamps must be non-decreasing");
    _window.push_back(when);
    if (_window.size() > _capacity)
        _window.pop_front();
}

std::optional<sim::Tick>
SlidingWindow::stalest() const
{
    if (_window.empty())
        return std::nullopt;
    return _window.front();
}

std::optional<sim::Tick>
SlidingWindow::newest() const
{
    if (_window.empty())
        return std::nullopt;
    return _window.back();
}

std::optional<double>
SlidingWindow::ratePerSecond(sim::Tick now) const
{
    if (_window.size() < 2)
        return std::nullopt;
    const sim::Tick span = now - _window.front();
    if (span <= 0)
        return std::nullopt;
    return static_cast<double>(_window.size()) / sim::toSeconds(span);
}

void
SlidingWindow::reset()
{
    _window.clear();
}

} // namespace rc::core
