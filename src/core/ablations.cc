#include "core/ablations.hh"

namespace rc::core {

std::unique_ptr<RainbowCakePolicy>
makeRainbowCake(const workload::Catalog& catalog, RainbowCakeConfig config)
{
    return std::make_unique<RainbowCakePolicy>(catalog, config);
}

std::unique_ptr<RainbowCakePolicy>
makeRainbowCakeNoSharing(const workload::Catalog& catalog)
{
    RainbowCakeConfig config;
    config.sharingAwareModeling = false;
    auto policy = std::make_unique<RainbowCakePolicy>(catalog, config);
    policy->setName("RainbowCake w/o sharing");
    return policy;
}

std::unique_ptr<RainbowCakePolicy>
makeRainbowCakeNoLayers(const workload::Catalog& catalog)
{
    RainbowCakeConfig config;
    config.layerCaching = false;
    auto policy = std::make_unique<RainbowCakePolicy>(catalog, config);
    policy->setName("RainbowCake w/o layers");
    return policy;
}

} // namespace rc::core
