/**
 * @file
 * The §7.3 ablation variants of RainbowCake, as ready-made factories.
 *
 * 1. "w/o sharing": the sharing-aware TTL modeling is replaced with a
 *    fixed keep-alive TTL policy (5 / 3 / 2 minutes for User / Lang /
 *    Bare), like the OpenWhisk default but layered.
 * 2. "w/o layers": only User containers are pre-warmed and kept
 *    alive; on expiry they are terminated, skipping the Bare and
 *    Lang phases entirely.
 */

#ifndef RC_CORE_ABLATIONS_HH_
#define RC_CORE_ABLATIONS_HH_

#include <memory>

#include "core/rainbowcake_policy.hh"

namespace rc::core {

/** Full RainbowCake with paper-default parameters. */
std::unique_ptr<RainbowCakePolicy>
makeRainbowCake(const workload::Catalog& catalog,
                RainbowCakeConfig config = {});

/** Ablation 1: fixed 5/3/2-minute TTLs instead of modeling. */
std::unique_ptr<RainbowCakePolicy>
makeRainbowCakeNoSharing(const workload::Catalog& catalog);

/** Ablation 2: User-only caching, no layers, no partial sharing. */
std::unique_ptr<RainbowCakePolicy>
makeRainbowCakeNoLayers(const workload::Catalog& catalog);

} // namespace rc::core

#endif // RC_CORE_ABLATIONS_HH_
