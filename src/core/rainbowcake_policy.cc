#include "core/rainbowcake_policy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rc::core {

using workload::Language;
using workload::Layer;

RainbowCakePolicy::RainbowCakePolicy(const workload::Catalog& catalog,
                                     RainbowCakeConfig config)
    : _catalog(catalog), _config(config),
      _cost(CostConfig{config.alpha, config.betaMemoryUnitMb}),
      _history(catalog, config.windowSize)
{
    if (config.quantile < 0.0 || config.quantile >= 1.0)
        sim::fatal("RainbowCakePolicy: quantile must lie in [0,1)");

    // Precompute the Eq. 5 averages for shared layers: per-language
    // lang-stage figures and global bare-stage figures.
    std::array<double, workload::kLanguageCount> langCount{};
    for (const auto& profile : _catalog) {
        const auto idx = workload::languageIndex(profile.language());
        _avgLangInitSeconds[idx] +=
            sim::toSeconds(profile.stageLatency(Layer::Lang));
        _avgLangMemoryMb[idx] += profile.memoryAtLayer(Layer::Lang);
        langCount[idx] += 1.0;
        _avgBareInitSeconds +=
            sim::toSeconds(profile.stageLatency(Layer::Bare));
        _avgBareMemoryMb += profile.memoryAtLayer(Layer::Bare);
    }
    for (std::size_t i = 0; i < workload::kLanguageCount; ++i) {
        if (langCount[i] > 0.0) {
            _avgLangInitSeconds[i] /= langCount[i];
            _avgLangMemoryMb[i] /= langCount[i];
        }
    }
    if (!_catalog.empty()) {
        const auto n = static_cast<double>(_catalog.size());
        _avgBareInitSeconds /= n;
        _avgBareMemoryMb /= n;
    }
}

void
RainbowCakePolicy::onArrival(workload::FunctionId function)
{
    const sim::Tick now = _view->now();
    _history.recordArrival(function, now);

    if (!_config.prewarmEnabled)
        return;

    // Algorithm 1: schedule an async pre-warm one predicted IAT out;
    // the platform re-checks Available() at fire time.
    const auto rate = _history.functionRate(function, now);
    if (rate && *rate > 0.0) {
        _view->schedulePrewarm(
            function, quantileIat(*rate, _config.prewarmQuantile));
    }
}

sim::Tick
RainbowCakePolicy::predictedIat(workload::FunctionId function,
                                Layer layer) const
{
    const sim::Tick now = _view->now();
    double lambda = 0.0;
    switch (layer) {
      case Layer::User: {
        const auto rate = _history.functionRate(function, now);
        if (!rate)
            return -1;
        lambda = *rate;
        break;
      }
      case Layer::Lang:
        lambda = _history.languageRate(_catalog.at(function).language(),
                                       now);
        break;
      case Layer::Bare:
        lambda = _history.globalRate(now);
        break;
      case Layer::None:
        return -1;
    }
    if (lambda <= 0.0)
        return -1;
    return quantileIat(lambda, _config.quantile);
}

sim::Tick
RainbowCakePolicy::sharedBeta(Language language, Layer layer) const
{
    if (layer == Layer::Lang) {
        const auto idx = workload::languageIndex(language);
        return _cost.betaFromRaw(_avgLangInitSeconds[idx],
                                 _avgLangMemoryMb[idx]);
    }
    if (layer == Layer::Bare)
        return _cost.betaFromRaw(_avgBareInitSeconds, _avgBareMemoryMb);
    sim::panic("RainbowCakePolicy::sharedBeta: bad layer");
}

sim::Tick
RainbowCakePolicy::currentTtl(workload::FunctionId function,
                              Layer layer) const
{
    if (!_config.sharingAwareModeling) {
        switch (layer) {
          case Layer::User: return _config.fixedUserTtl;
          case Layer::Lang: return _config.fixedLangTtl;
          case Layer::Bare: return _config.fixedBareTtl;
          case Layer::None: return 0;
        }
    }

    if (layer == Layer::User) {
        // Eq. 7 for the User layer; keepAliveTtl() decides whether a
        // specific container gets this window or the plain beta bound.
        const sim::Tick iat = predictedIat(function, Layer::User);
        return _cost.ttl(_catalog.at(function), Layer::User, iat);
    }

    const sim::Tick bound =
        sharedBeta(_catalog.at(function).language(), layer);
    if (!_config.quantileBoundsSharedLayers)
        return bound;
    const sim::Tick iat = predictedIat(function, layer);
    if (iat < 0)
        return bound;
    return std::min(iat, bound);
}

sim::Tick
RainbowCakePolicy::keepAliveTtl(const container::Container& c)
{
    // Freshly idle containers are always full User containers (after
    // execution or a completed pre-warm).
    const workload::FunctionId f =
        c.function() != workload::kInvalidFunction ? c.function()
                                                   : c.initFunction();
    sim::Tick ttl = 0;
    if (!_config.sharingAwareModeling) {
        ttl = _config.fixedUserTtl;
    } else if (c.everExecuted() && !_config.quantileBoundsUserLayer &&
               pressureLevel() < 2) {
        // At ladder level >= 2 (rc::admission) this generous branch is
        // bypassed: the User window falls back to the quantile-bounded
        // min(IAT, beta) below, so containers peel to the cheaper
        // L2/L1 layers quickly and the pool caches decayed layers
        // instead of full-window L3 containers.
        // Per §7.1, the initial keep-alive TTL of a container that
        // served an invocation is the upper bound beta(u): it may stay
        // idle until its memory cost reaches the startup cost its User
        // layer saves; Eq. 7's min(IAT, beta) applies at the downgrade
        // transitions of Algorithm 2. Speculative (pre-warmed, never
        // executed) containers exist for one predicted arrival only,
        // so their window is quantile-bounded: if the predicted
        // invocation does not materialize, they downgrade promptly.
        ttl = _cost.beta(_catalog.at(f), Layer::User);
    } else {
        ttl = currentTtl(f, Layer::User);
    }
    if (_obs != nullptr) {
        // Decision audit: the model inputs behind this TTL (arg1 is
        // the quantile-predicted IAT; -1 when no history exists).
        const sim::Tick iat = predictedIat(f, Layer::User);
        _obs->emit(_view->now(), obs::EventType::PolicyDecision, c.id(),
                   f, static_cast<std::uint8_t>(Layer::User),
                   c.everExecuted() ? 1 : 0, sim::toSeconds(ttl),
                   iat < 0 ? -1.0 : sim::toSeconds(iat));
    }
    return ttl;
}

policy::IdleDecision
RainbowCakePolicy::onIdleExpired(const container::Container& c)
{
    if (!_config.layerCaching)
        return policy::IdleDecision::kill();

    if (c.layer() == Layer::Bare)
        return policy::IdleDecision::kill(obs::KillCause::BareExpired);

    // Algorithm 2: peel the top layer and ask the recorder for the
    // next keep-alive window at the downgraded type — unless the
    // shared pool the container would join is already saturated, in
    // which case terminating is strictly cheaper.
    // The expiring container itself still sits at c.layer(), never at
    // `next`, so the platform's O(1) per-layer count needs no
    // self-exclusion.
    const Layer next = workload::layerBelow(c.layer());
    const std::size_t poolMates = _view->idleCountAtLayer(
        next, next == Layer::Lang ? c.language() : std::nullopt);
    if (poolMates >= _config.maxIdleSharedPerGroup)
        return policy::IdleDecision::kill(obs::KillCause::PoolSaturated);

    const workload::FunctionId f =
        c.function() != workload::kInvalidFunction ? c.function()
                                                   : c.initFunction();
    const sim::Tick ttl = currentTtl(f, next);
    if (_obs != nullptr) {
        const sim::Tick iat = predictedIat(f, next);
        _obs->emit(_view->now(), obs::EventType::PolicyDecision, c.id(),
                   f, static_cast<std::uint8_t>(next), 0,
                   sim::toSeconds(ttl),
                   iat < 0 ? -1.0 : sim::toSeconds(iat));
    }
    return policy::IdleDecision::downgrade(ttl);
}

} // namespace rc::core
