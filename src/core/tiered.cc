#include "core/tiered.hh"

#include "sim/logging.hh"

namespace rc::core {

TieredCachePolicy::TieredCachePolicy(std::unique_ptr<policy::Policy> base,
                                     TieredConfig config)
    : _base(std::move(base)), _config(config)
{
    if (!_base)
        sim::fatal("TieredCachePolicy: base policy must not be null");
    if (config.nvmCostFactor <= 0.0 || config.nvmCostFactor > 1.0)
        sim::fatal("TieredCachePolicy: NVM cost factor outside (0,1]");
    if (config.nvmFetchLatency < 0)
        sim::fatal("TieredCachePolicy: negative fetch latency");
}

std::string
TieredCachePolicy::name() const
{
    return _base->name() + " + NVM tier";
}

void
TieredCachePolicy::attach(policy::PlatformView& view)
{
    Policy::attach(view);
    _base->attach(view);
}

void
TieredCachePolicy::onArrival(workload::FunctionId function)
{
    _base->onArrival(function);
}

void
TieredCachePolicy::onStartupResolved(const policy::StartupObservation& obs)
{
    _base->onStartupResolved(obs);
}

sim::Tick
TieredCachePolicy::keepAliveTtl(const container::Container& c)
{
    return _base->keepAliveTtl(c);
}

policy::IdleDecision
TieredCachePolicy::onIdleExpired(const container::Container& c)
{
    return _base->onIdleExpired(c);
}

bool
TieredCachePolicy::layerSharingEnabled() const
{
    return _base->layerSharingEnabled();
}

bool
TieredCachePolicy::allowForeignUserContainer(
    const container::Container& c, workload::FunctionId f) const
{
    return _base->allowForeignUserContainer(c, f);
}

sim::Tick
TieredCachePolicy::foreignUserStartupLatency(
    const container::Container& c, workload::FunctionId f) const
{
    return _base->foreignUserStartupLatency(c, f);
}

std::vector<container::ContainerId>
TieredCachePolicy::rankEvictionVictims(
    const std::vector<const container::Container*>& idle)
{
    return _base->rankEvictionVictims(idle);
}

bool
TieredCachePolicy::forkSharedLayers() const
{
    return _base->forkSharedLayers();
}

sim::Tick
TieredCachePolicy::forkLatency() const
{
    return _base->forkLatency();
}

double
TieredCachePolicy::partialStartLatencyFactor() const
{
    return _base->partialStartLatencyFactor();
}

sim::Tick
TieredCachePolicy::partialStartLatencyBias() const
{
    // Restoring a parked Lang/Bare layer crosses the NVM tier.
    return _config.nvmFetchLatency + _base->partialStartLatencyBias();
}

double
TieredCachePolicy::coldStartFactor() const
{
    return _base->coldStartFactor();
}

double
TieredCachePolicy::auxiliaryMemoryMb(
    const workload::FunctionProfile& p) const
{
    return _base->auxiliaryMemoryMb(p);
}

double
pricedWasteMbSeconds(const stats::IntervalLog& waste,
                     const TieredConfig& config)
{
    double total = 0.0;
    for (const auto& interval : waste.intervals()) {
        const bool nvm = interval.layer == workload::Layer::Lang ||
                         interval.layer == workload::Layer::Bare;
        total += interval.wasteMbSeconds() *
                 (nvm ? config.nvmCostFactor : 1.0);
    }
    return total;
}

} // namespace rc::core
