/**
 * @file
 * Example: exploring the synthetic Azure-like trace generator.
 *
 * Prints the shape of a generated 8-hour trace set — per-function
 * archetypes, per-minute arrival profile, and the measured IAT CV —
 * and then samples three CV-targeted sets to show the §7.6 knob.
 */

#include <iostream>

#include "exp/standard_traces.hh"
#include "stats/table.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "trace/sampler.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace rc;

    const auto catalog = workload::Catalog::standard20();
    const auto traceSet = exp::eightHourTrace(catalog);

    stats::Table table("Per-function shape of the standard 8-hour set");
    table.setHeader({"Function", "Invocations", "ActiveMinutes",
                     "MaxPerMinute"});
    for (const auto& t : traceSet.traces()) {
        std::uint32_t peak = 0;
        for (const auto count : t.perMinute)
            peak = std::max(peak, count);
        table.row()
            .text(catalog.at(t.function).shortName())
            .integer(static_cast<long long>(t.totalInvocations()))
            .integer(static_cast<long long>(t.activeMinutes()))
            .integer(peak);
    }
    table.print(std::cout);

    const auto arrivals = trace::expandArrivals(traceSet);
    std::cout << "\nTotal invocations: " << arrivals.size()
              << ", mean IAT: "
              << stats::formatNumber(
                     sim::toSeconds(trace::meanIat(arrivals)), 2)
              << " s, merged IAT CV: "
              << stats::formatNumber(trace::iatCv(arrivals), 2) << "\n\n";

    stats::Table cvTable("CV-targeted 1-hour samples (Fig. 12 inputs)");
    cvTable.setHeader({"TargetCV", "Invocations", "BucketedCV"});
    for (const double target : {0.2, 1.0, 4.0}) {
        trace::CvSampleConfig config;
        config.targetCv = target;
        const auto sample = trace::sampleWithTargetCv(catalog, config);
        cvTable.row()
            .num(target, 1)
            .integer(static_cast<long long>(sample.totalInvocations()))
            .num(trace::measureBucketedCv(sample), 2);
    }
    cvTable.print(std::cout);
    return 0;
}
