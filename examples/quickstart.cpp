/**
 * @file
 * Quickstart: simulate one hour of a small serverless workload under
 * RainbowCake and print what happened.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/ablations.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/standard_traces.hh"
#include "trace/generator.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace rc;

    // 1. Deploy the paper's 20-function workload (Table 1).
    const auto catalog = workload::Catalog::standard20();
    std::cout << "Deployed " << catalog.size() << " functions.\n";

    // 2. Synthesize one hour of Azure-like invocations.
    trace::WorkloadTraceConfig traceConfig;
    traceConfig.minutes = 60;
    traceConfig.targetInvocations = 3000;
    traceConfig.seed = 7;
    const auto traceSet = trace::generateAzureLike(catalog, traceConfig);
    std::cout << "Generated " << traceSet.totalInvocations()
              << " invocations over " << traceSet.durationMinutes()
              << " minutes.\n\n";

    // 3. Run the workload under RainbowCake on a 32 GB worker node.
    platform::NodeConfig nodeConfig;
    nodeConfig.pool.memoryBudgetMb = 32.0 * 1024.0;
    const auto result = exp::runExperiment(
        catalog, [&catalog] { return core::makeRainbowCake(catalog); },
        traceSet, nodeConfig);

    // 4. Report.
    exp::printSummaryTable(std::cout, "Quickstart (1h, RainbowCake)",
                           {result});

    std::cout << "\nStartup-type mix: every non-Cold row above is an "
                 "invocation that avoided a full cold start by reusing a "
                 "cached layer, a pre-warmed container, or an in-flight "
                 "initialization.\n";
    return 0;
}
