/**
 * @file
 * Example: running RainbowCake across a multi-node cluster with the
 * §8 locality/sharing/load scheduler.
 */

#include <iostream>

#include "cluster/cluster.hh"
#include "core/ablations.hh"
#include "stats/table.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace rc;

    const auto catalog = workload::Catalog::standard20();

    trace::WorkloadTraceConfig traceConfig;
    traceConfig.minutes = 120;
    traceConfig.targetInvocations = 2000;
    traceConfig.seed = 19;
    const auto arrivals = trace::expandArrivals(
        trace::generateAzureLike(catalog, traceConfig));
    std::cout << "Routing " << arrivals.size()
              << " invocations across a 4-node cluster...\n\n";

    stats::Table table("Cluster scheduling comparison (2h workload)");
    table.setHeader({"Scheduling", "ColdStarts", "MeanStartup(s)",
                     "Waste(GBxs)", "PerNodeInvocations"});
    for (const auto scheduling :
         {cluster::Scheduling::RoundRobin,
          cluster::Scheduling::LeastLoaded,
          cluster::Scheduling::LocalityAware}) {
        cluster::ClusterConfig config;
        config.nodes = 4;
        config.node.pool.memoryBudgetMb = 32.0 * 1024.0;
        config.scheduling = scheduling;
        cluster::Cluster cluster(
            catalog,
            [&catalog] { return core::makeRainbowCake(catalog); },
            config);
        const auto result = cluster.run(arrivals);

        std::string spread;
        for (const auto count : result.perNodeInvocations) {
            if (!spread.empty())
                spread += "/";
            spread += std::to_string(count);
        }
        table.row()
            .text(result.schedulingName)
            .integer(static_cast<long long>(result.coldStarts))
            .num(result.meanStartupSeconds, 3)
            .num(result.totalWasteMbSeconds / 1024.0, 0)
            .text(spread);
    }
    table.print(std::cout);

    std::cout << "\nLocality-aware routing keeps each function's warm "
                 "containers on one node and sends sharing-eligible "
                 "misses where idle Lang/Bare layers already sit.\n";
    return 0;
}
