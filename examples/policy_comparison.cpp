/**
 * @file
 * Compare all six §7.2 policies on the same one-hour workload.
 *
 * This is the miniature version of the paper's headline experiment:
 * identical trace, identical function profiles, identical node — only
 * the pre-warm/keep-alive policy differs.
 */

#include <cstdlib>
#include <iostream>

#include "exp/experiment.hh"
#include "exp/report.hh"
#include "trace/generator.hh"
#include "workload/catalog.hh"

int
main(int argc, char** argv)
{
    using namespace rc;

    // Optional overrides: policy_comparison [minutes] [budget-gb]
    const std::size_t minutes =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
    const double budgetGb = argc > 2 ? std::atof(argv[2]) : 64.0;

    const auto catalog = workload::Catalog::standard20();

    trace::WorkloadTraceConfig traceConfig;
    traceConfig.minutes = minutes;
    traceConfig.targetInvocations = minutes * 17;
    traceConfig.seed = 11;
    const auto traceSet = trace::generateAzureLike(catalog, traceConfig);

    platform::NodeConfig nodeConfig;
    nodeConfig.pool.memoryBudgetMb = budgetGb * 1024.0;

    std::vector<exp::RunResult> results;
    for (const auto& policy : exp::standardBaselines(catalog)) {
        results.push_back(
            exp::runExperiment(catalog, policy.make, traceSet, nodeConfig));
        std::cout << "ran " << results.back().policyName << "\n";
    }
    std::cout << '\n';
    exp::printSummaryTable(std::cout, "Policy comparison (1h, 64 GB node)",
                           results);

    // Headline relative numbers versus RainbowCake (last row).
    const auto& ours = results.back();
    std::cout << "\nRainbowCake vs baselines:\n";
    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
        const auto& base = results[i];
        std::cout << "  vs " << base.policyName << ": startup "
                  << exp::percentChange(
                         base.metrics.totalStartupSeconds(),
                         ours.metrics.totalStartupSeconds())
                  << ", memory waste "
                  << exp::percentChange(base.totalWasteMbSeconds,
                                        ours.totalWasteMbSeconds)
                  << '\n';
    }
    return 0;
}
