/**
 * @file
 * Example: burst tolerance under a synthetic flash crowd.
 *
 * Builds a hostile workload — long silence, then a flash crowd of
 * hundreds of concurrent invocations across all twenty functions,
 * repeated — and compares how RainbowCake and the fixed keep-alive
 * baseline absorb it (the §3.1 "tolerance to burstiness" objective).
 */

#include <iostream>

#include "core/ablations.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "policy/openwhisk_fixed.hh"
#include "trace/trace_set.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace rc;

    const auto catalog = workload::Catalog::standard20();

    // Flash crowds: every 25 minutes, each function receives a burst
    // of 12 invocations within one minute; silence otherwise.
    trace::TraceSet traceSet(180);
    for (const auto& profile : catalog) {
        trace::FunctionTrace t;
        t.function = profile.id();
        t.perMinute.assign(180, 0);
        for (std::size_t m = 5; m < 180; m += 25)
            t.perMinute[m] = 12;
        traceSet.add(t);
    }
    std::cout << "Flash-crowd workload: " << traceSet.totalInvocations()
              << " invocations in " << traceSet.durationMinutes()
              << " minutes, bursts of "
              << 12 * catalog.size() << " per burst minute\n\n";

    platform::NodeConfig config;
    config.pool.memoryBudgetMb = 64.0 * 1024.0;

    std::vector<exp::RunResult> results;
    results.push_back(exp::runExperiment(
        catalog,
        [] { return std::make_unique<policy::OpenWhiskFixedPolicy>(); },
        traceSet, config));
    results.push_back(exp::runExperiment(
        catalog, [&catalog] { return core::makeRainbowCake(catalog); },
        traceSet, config));

    exp::printSummaryTable(std::cout, "Flash-crowd stress (64 GB node)",
                           results);

    const auto& fixed = results[0];
    const auto& cake = results[1];
    std::cout << "\nRainbowCake vs OpenWhisk under flash crowds: startup "
              << exp::percentChange(fixed.totalStartupSeconds,
                                    cake.totalStartupSeconds)
              << ", memory waste "
              << exp::percentChange(fixed.totalWasteMbSeconds,
                                    cake.totalWasteMbSeconds)
              << ", P99 end-to-end "
              << exp::percentChange(fixed.metrics.p99EndToEndSeconds(),
                                    cake.metrics.p99EndToEndSeconds())
              << '\n';
    std::cout << "RainbowCake matches the fixed keep-alive baseline's "
                 "latency on these worst-case (window-defeating) bursts "
                 "while discarding almost all of its idle memory: the "
                 "tolerance-to-burstiness objective of Section 3.1.\n";
    return 0;
}
