/**
 * @file
 * Example: implementing a custom pre-warm & keep-alive policy against
 * the public Policy interface, and racing it against RainbowCake.
 *
 * The custom policy here is a simple "EWMA keep-alive": it keeps each
 * function's container alive for twice that function's exponentially
 * weighted moving-average inter-arrival time. It shows off the three
 * extension points most custom policies need:
 *   * onArrival    — observe the workload,
 *   * keepAliveTtl — pick a keep-alive window,
 *   * onIdleExpired— terminate or downgrade.
 */

#include <iostream>
#include <unordered_map>

#include "core/ablations.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "trace/generator.hh"
#include "workload/catalog.hh"

namespace {

using namespace rc;

/** Keep-alive at 2x the EWMA of each function's inter-arrival time. */
class EwmaPolicy : public policy::Policy
{
  public:
    std::string name() const override { return "EWMA-2x"; }

    void
    onArrival(workload::FunctionId function) override
    {
        const sim::Tick now = _view->now();
        auto& state = _functions[function];
        if (state.lastArrival >= 0) {
            const auto iat =
                static_cast<double>(now - state.lastArrival);
            state.ewmaIat = state.ewmaIat <= 0.0
                                ? iat
                                : 0.7 * state.ewmaIat + 0.3 * iat;
        }
        state.lastArrival = now;
    }

    sim::Tick
    keepAliveTtl(const container::Container& c) override
    {
        const auto it = _functions.find(c.function());
        if (it == _functions.end() || it->second.ewmaIat <= 0.0)
            return 10 * sim::kMinute; // cold fallback
        return static_cast<sim::Tick>(2.0 * it->second.ewmaIat);
    }

    policy::IdleDecision
    onIdleExpired(const container::Container& c) override
    {
        (void)c;
        return policy::IdleDecision::kill();
    }

  private:
    struct FunctionState
    {
        sim::Tick lastArrival = -1;
        double ewmaIat = 0.0;
    };
    std::unordered_map<workload::FunctionId, FunctionState> _functions;
};

} // namespace

int
main()
{
    const auto catalog = workload::Catalog::standard20();

    trace::WorkloadTraceConfig traceConfig;
    traceConfig.minutes = 240;
    traceConfig.targetInvocations = 4000;
    traceConfig.seed = 3;
    const auto traceSet = trace::generateAzureLike(catalog, traceConfig);

    std::vector<exp::RunResult> results;
    results.push_back(exp::runExperiment(
        catalog, [] { return std::make_unique<EwmaPolicy>(); }, traceSet));
    results.push_back(exp::runExperiment(
        catalog, [&catalog] { return core::makeRainbowCake(catalog); },
        traceSet));

    exp::printSummaryTable(std::cout,
                           "Custom EWMA policy vs RainbowCake (4h)",
                           results);

    std::cout << "\nRainbowCake vs EWMA-2x: startup "
              << exp::percentChange(results[0].totalStartupSeconds,
                                    results[1].totalStartupSeconds)
              << ", memory waste "
              << exp::percentChange(results[0].totalWasteMbSeconds,
                                    results[1].totalWasteMbSeconds)
              << '\n';
    std::cout << "\nTo write your own policy, subclass rc::policy::Policy "
                 "and override onArrival / keepAliveTtl / onIdleExpired "
                 "(see src/policy/policy.hh for the full hook list).\n";
    return 0;
}
