/**
 * @file
 * chaos_check — randomized fault-plan replay against platform
 * invariants. CI runs it under ASan/UBSan with a handful of fixed
 * seeds:
 *
 *   chaos_check --seed 1 [--runs 4] [--minutes 20]
 *
 * Each run draws a randomized FaultPlan (init failures, exec crashes,
 * wedges, node crashes, overload windows) and a randomized
 * AdmissionPlan (rate limits, bounded queue, deadline shedding,
 * breakers, pressure control), picks one of the six baselines,
 * replays a generated trace on a single node and on a small cluster
 * with failover, and asserts:
 *
 *  * conservation — every admitted invocation either completed,
 *    exhausted its retries, was rejected or shed by admission
 *    control, or is accountably stranded; nothing is lost and
 *    nothing completes twice;
 *  * overload invariants — the admission queue never exceeds its
 *    configured bound, and every circuit-breaker transition history
 *    follows the legal closed -> open -> half-open FSM;
 *  * quiescence — no in-flight work or live containers survive the
 *    end-of-run flush, and pool memory accounting returns to zero
 *    after crash-restart cycles;
 *  * determinism — an identical (seed, plan, policy) twin run
 *    reproduces the exact same outcome counts and latency totals.
 *
 * --overload replays a 5x-denser trace against a quarter of the
 * memory (the CI chaos job's overload-heavy configuration), forcing
 * sustained queueing, shedding, and breaker activity.
 *
 * --domains draws a randomized DomainPlan (correlated outages,
 * rolling upgrades, staged rejoin, recovery prewarms, client retry
 * feedback) on top of the fault/admission plans and replays it on the
 * sharded core at 1 and 4 shards, asserting the recovery and prewarm
 * conservation identities from cluster/conservation.hh plus the
 * byte-identical-fingerprint contract.
 *
 * --shards N additionally replays every run on the sharded parallel
 * cluster core (ShardedCluster) at N shards and again at 1 shard,
 * asserting the same conservation/breaker invariants on both plus the
 * sharded core's own contract: the report fingerprint is
 * bit-identical at any shard count. CI runs this configuration under
 * ThreadSanitizer so the worker/coordinator handshake is exercised
 * with real fault churn.
 *
 * Exit status 0 when every invariant holds for every run.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "admission/admission_plan.hh"
#include "admission/circuit_breaker.hh"
#include "cluster/cluster.hh"
#include "cluster/conservation.hh"
#include "cluster/sharded_cluster.hh"
#include "exp/cluster_run.hh"
#include "exp/experiment.hh"
#include "fault/domain_plan.hh"
#include "fault/fault_plan.hh"
#include "platform/node.hh"
#include "sim/rng.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "workload/catalog.hh"

namespace {

using namespace rc;

int gFailures = 0;

void
fail(const std::string& what)
{
    std::cerr << "chaos_check: FAIL: " << what << "\n";
    ++gFailures;
}

void
expect(bool ok, const std::string& what)
{
    if (!ok)
        fail(what);
}

/** Randomize every fault class; ranges keep runs short but eventful. */
fault::FaultPlan
randomPlan(sim::Rng& rng)
{
    fault::FaultPlan plan;
    plan.bareInitFailProb = 0.01 * rng.uniform();
    plan.langInitFailProb = 0.02 * rng.uniform();
    plan.userInitFailProb = 0.05 * rng.uniform();
    plan.execCrashProb = 0.03 * rng.uniform();
    plan.wedgeProb = 0.01 * rng.uniform();
    plan.execTimeout = sim::fromSeconds(20.0 + 40.0 * rng.uniform());
    plan.nodeMtbfSeconds =
        rng.bernoulli(0.7) ? 300.0 + 900.0 * rng.uniform() : 0.0;
    plan.nodeDowntimeSeconds = 10.0 + 50.0 * rng.uniform();
    plan.overloadRatePerHour =
        rng.bernoulli(0.5) ? 1.0 + 3.0 * rng.uniform() : 0.0;
    plan.overloadDurationSeconds = 20.0 + 60.0 * rng.uniform();
    plan.overloadSlowdown = 1.5 + rng.uniform();
    plan.maxRetries = 1 + static_cast<std::uint32_t>(3.0 * rng.uniform());
    plan.retryJitterFrac = 0.2 * rng.uniform();
    return plan;
}

/** Randomize the gray-failure network plan the same way. */
fault::NetworkPlan
randomNetworkPlan(sim::Rng& rng)
{
    fault::NetworkPlan net;
    // Always keep the link jittery so the plan is active and every
    // dispatch goes through the ticket protocol.
    net.linkDelayMeanMs = 1.0 + 9.0 * rng.uniform();
    net.linkDelayCv = 0.3 + 0.7 * rng.uniform();
    if (rng.bernoulli(0.7)) {
        net.linkHeavyTailProb = 0.02 + 0.08 * rng.uniform();
        net.linkHeavyTailFactor = 10.0 + 40.0 * rng.uniform();
    }
    if (rng.bernoulli(0.5)) {
        net.msgDropProb = 0.03 * rng.uniform();
        net.msgRetransmitMs = 50.0 + 250.0 * rng.uniform();
    }
    if (rng.bernoulli(0.7)) {
        net.degradedRatePerHour = 6.0 + 18.0 * rng.uniform();
        net.degradedDurationSeconds = 60.0 + 120.0 * rng.uniform();
        net.degradedExecSlowdown = 4.0 + 8.0 * rng.uniform();
        net.degradedInitSlowdown = 4.0 + 8.0 * rng.uniform();
    }
    if (rng.bernoulli(0.5)) {
        net.partitionRatePerHour = 2.0 + 4.0 * rng.uniform();
        net.partitionDurationSeconds = 10.0 + 30.0 * rng.uniform();
        net.partitionFraction = 0.125 + 0.25 * rng.uniform();
    }
    if (rng.bernoulli(0.8)) {
        net.hedgeEnabled = true;
        net.hedgeLatencyFactor = 1.0 + rng.uniform();
        net.hedgeMinSamples =
            10 + static_cast<std::uint32_t>(30.0 * rng.uniform());
        net.hedgeMinBudgetMs = 50.0 + 150.0 * rng.uniform();
    }
    if (rng.bernoulli(0.8)) {
        net.quarantineEnabled = true;
        net.quarantineLatencyFactor = 2.0 + 2.0 * rng.uniform();
        net.quarantineMinSamples =
            5 + static_cast<std::uint32_t>(25.0 * rng.uniform());
        net.quarantineDrainSeconds = 10.0 + 40.0 * rng.uniform();
        net.quarantineProbeCount =
            1 + static_cast<std::uint32_t>(4.0 * rng.uniform());
        net.quarantineReadmitFactor = 1.2 + 0.6 * rng.uniform();
    }
    return net;
}

/** Randomize the correlated-domain + recovery machinery the same way. */
fault::DomainPlan
randomDomainPlan(sim::Rng& rng)
{
    fault::DomainPlan plan;
    plan.domainCount =
        2 + static_cast<std::uint32_t>(2.0 * rng.uniform());
    // Always keep at least one outage source armed so every run
    // exercises the orchestrator FSM end to end.
    plan.outageRatePerHour = 2.0 + 6.0 * rng.uniform();
    plan.outageDurationSeconds = 30.0 + 90.0 * rng.uniform();
    if (rng.bernoulli(0.5)) {
        fault::ScriptedOutage scripted;
        scripted.startSeconds = 120.0 + 240.0 * rng.uniform();
        scripted.durationSeconds = 45.0 + 60.0 * rng.uniform();
        scripted.domain = 0;
        plan.outages.push_back(scripted);
    }
    if (rng.bernoulli(0.6)) {
        plan.upgradeRatePerHour = 1.0 + 3.0 * rng.uniform();
        plan.upgradeDurationSeconds = 15.0 + 30.0 * rng.uniform();
        plan.upgradeStaggerSeconds = 5.0 + 15.0 * rng.uniform();
        plan.drainTimeoutSeconds = 10.0 + 30.0 * rng.uniform();
    }
    plan.stagedRejoin = rng.bernoulli(0.7);
    plan.rejoinTokensPerSecond = 0.25 + 1.75 * rng.uniform();
    plan.prewarmEnabled = rng.bernoulli(0.8);
    plan.prewarmMaxLayers =
        1 + static_cast<std::uint32_t>(7.0 * rng.uniform());
    plan.warmupTimeoutSeconds = 5.0 + 20.0 * rng.uniform();
    if (rng.bernoulli(0.6)) {
        plan.retryFeedbackEnabled = true;
        plan.retryBackoffSeconds = 0.5 + 2.0 * rng.uniform();
        plan.retryMaxAttempts =
            1 + static_cast<std::uint32_t>(2.0 * rng.uniform());
    }
    return plan;
}

/** Randomize the overload-control machinery the same way. */
admission::AdmissionPlan
randomAdmissionPlan(sim::Rng& rng)
{
    admission::AdmissionPlan plan;
    if (rng.bernoulli(0.4)) {
        plan.functionRatePerSecond = 0.5 + 2.0 * rng.uniform();
        plan.tokenBucketBurst = 2.0 + 8.0 * rng.uniform();
    }
    if (rng.bernoulli(0.3)) {
        plan.functionConcurrencyCap =
            2 + static_cast<std::uint32_t>(6.0 * rng.uniform());
    }
    if (rng.bernoulli(0.7)) {
        plan.maxQueueDepth =
            8 + static_cast<std::uint32_t>(56.0 * rng.uniform());
    }
    if (rng.bernoulli(0.7))
        plan.queueDeadlineSeconds = 10.0 + 50.0 * rng.uniform();
    if (rng.bernoulli(0.5)) {
        plan.breakerFailureThreshold = 0.3 + 0.4 * rng.uniform();
        plan.breakerWindowSeconds = 30.0 + 60.0 * rng.uniform();
        plan.breakerCooloffSeconds = 10.0 + 40.0 * rng.uniform();
        plan.breakerMinSamples =
            5 + static_cast<std::uint32_t>(15.0 * rng.uniform());
    }
    if (rng.bernoulli(0.7)) {
        plan.pressureControlEnabled = true;
        plan.controllerIntervalSeconds = 5.0 + 10.0 * rng.uniform();
        plan.pressureSmoothing = 0.3 + 0.6 * rng.uniform();
        plan.pressureWarn = 0.25 + 0.1 * rng.uniform();
        plan.pressureHigh = plan.pressureWarn + 0.15 + 0.1 * rng.uniform();
        plan.pressureCritical =
            plan.pressureHigh + 0.15 + 0.1 * rng.uniform();
        plan.ttlShrinkFactor = 0.3 + 0.5 * rng.uniform();
        plan.overloadPressureBias = 0.3 + 0.5 * rng.uniform();
    }
    return plan;
}

/** Every recorded breaker transition must be an edge of the FSM. */
void
checkBreakerTransitions(const admission::CircuitBreaker& breaker,
                        const std::string& label)
{
    using State = admission::CircuitBreaker::State;
    State current = State::Closed;
    sim::Tick last = 0;
    for (const auto& tr : breaker.transitions()) {
        expect(tr.from == current,
               label + ": breaker history is not contiguous");
        expect(tr.at >= last, label + ": breaker history out of order");
        const bool legal =
            (tr.from == State::Closed && tr.to == State::Open) ||
            (tr.from == State::Open && tr.to == State::HalfOpen) ||
            (tr.from == State::HalfOpen && tr.to == State::Open) ||
            (tr.from == State::HalfOpen && tr.to == State::Closed);
        expect(legal, label + ": illegal breaker transition " +
                          std::string(toString(tr.from)) + " -> " +
                          toString(tr.to));
        current = tr.to;
        last = tr.at;
    }
}

/** Outcome snapshot used by the determinism twin comparison. */
struct Outcome
{
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::size_t stranded = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t shedPressure = 0;
    std::uint64_t degradedKeepalives = 0;
    std::size_t peakQueueDepth = 0;
    double totalStartupSeconds = 0.0;
    double meanE2eSeconds = 0.0;

    bool operator==(const Outcome& other) const
    {
        return admitted == other.admitted &&
               completed == other.completed && failed == other.failed &&
               retries == other.retries && stranded == other.stranded &&
               rejected == other.rejected &&
               shedDeadline == other.shedDeadline &&
               shedPressure == other.shedPressure &&
               degradedKeepalives == other.degradedKeepalives &&
               peakQueueDepth == other.peakQueueDepth &&
               totalStartupSeconds == other.totalStartupSeconds &&
               meanE2eSeconds == other.meanE2eSeconds;
    }
};

Outcome
runNode(const workload::Catalog& catalog, const exp::NamedPolicy& policy,
        const std::vector<trace::Arrival>& arrivals,
        const platform::NodeConfig& config, const std::string& label)
{
    platform::Node node(catalog, policy.make(), config);
    node.run(arrivals);

    Outcome outcome;
    outcome.admitted = node.invoker().admittedInvocations();
    outcome.completed = node.metrics().total();
    outcome.failed = node.invoker().failedInvocations();
    outcome.retries = node.invoker().retriesScheduled();
    outcome.stranded = node.strandedInvocations();
    outcome.rejected = node.invoker().rejectedInvocations();
    outcome.shedDeadline = node.invoker().shedDeadlineCount();
    outcome.shedPressure = node.invoker().shedPressureCount();
    outcome.degradedKeepalives = node.invoker().degradedKeepalives();
    outcome.peakQueueDepth = node.invoker().peakQueueDepth();
    outcome.totalStartupSeconds = node.metrics().totalStartupSeconds();
    outcome.meanE2eSeconds = node.metrics().meanEndToEndSeconds();

    // Conservation: one terminal state per admitted invocation. A
    // lost invocation shows up as admitted > accounted; a
    // double-execution as admitted < accounted.
    expect(cluster::conservation::admissionIdentity(
               outcome.admitted, arrivals.size(), 0, 0, 0),
           label + ": admitted != arrivals");
    expect(cluster::conservation::nodeConservation(
               outcome.completed, outcome.failed, outcome.stranded,
               outcome.rejected, outcome.shedDeadline,
               outcome.shedPressure, outcome.admitted),
           label +
               ": completed + failed + stranded + rejected + shed "
               "!= admitted");

    // Overload invariant: the pending queue never grows past its
    // configured bound.
    if (config.admission.maxQueueDepth > 0) {
        expect(outcome.peakQueueDepth <= config.admission.maxQueueDepth,
               label + ": queue depth exceeded its bound");
    }

    // Quiescence: nothing in flight, nothing alive, memory balanced
    // even across crash-restart cycles.
    expect(node.invoker().inFlightInvocations() == 0,
           label + ": in-flight work survived the run");
    expect(node.pool().liveCount() == 0,
           label + ": live containers survived finalize");
    expect(node.pool().usedMemoryMb() < 1e-6,
           label + ": pool memory accounting did not return to zero");
    return outcome;
}

void
runClusterCheck(const workload::Catalog& catalog,
                const exp::NamedPolicy& policy,
                const std::vector<trace::Arrival>& arrivals,
                const platform::NodeConfig& config,
                const std::string& label)
{
    cluster::ClusterConfig clusterConfig;
    clusterConfig.nodes = 3;
    clusterConfig.node = config;
    clusterConfig.node.pool.memoryBudgetMb = config.pool.memoryBudgetMb;
    cluster::Cluster cluster(catalog, policy.make, clusterConfig);
    const auto result = cluster.run(arrivals);

    // Failover conservation: every extracted invocation was re-routed
    // (admissions exceed arrivals by exactly the re-routed count), and
    // each arrival still reaches exactly one terminal state.
    std::uint64_t admitted = 0;
    std::uint64_t extracted = 0;
    std::size_t inFlight = 0;
    std::size_t peakQueue = 0;
    for (const auto& node : cluster.nodes()) {
        admitted += node->invoker().admittedInvocations();
        extracted += node->invoker().extractedInvocations();
        inFlight += node->invoker().inFlightInvocations();
        peakQueue =
            std::max(peakQueue, node->invoker().peakQueueDepth());
    }
    expect(extracted == result.reroutedInvocations,
           label + ": extracted != rerouted");
    expect(cluster::conservation::admissionIdentity(
               admitted, arrivals.size(), result.reroutedInvocations,
               0, 0),
           label + ": cluster admissions != arrivals + rerouted");
    expect(cluster::conservation::fleetConservation(
               result.invocations, result.failedInvocations,
               result.strandedInvocations, extracted,
               result.rejectedInvocations, result.shedDeadline,
               result.shedPressure, 0, admitted),
           label + ": cluster conservation broken");
    expect(inFlight == 0, label + ": cluster in-flight work survived");
    if (config.admission.maxQueueDepth > 0) {
        expect(peakQueue <= config.admission.maxQueueDepth,
               label + ": cluster queue depth exceeded its bound");
    }

    // Breaker histories must follow the FSM on every node.
    for (std::size_t n = 0; n < cluster.breakers().size(); ++n) {
        checkBreakerTransitions(cluster.breakers()[n],
                                label + " node " + std::to_string(n));
    }
}

/**
 * Replay the run on the sharded parallel core. Beyond the serial
 * cluster's conservation and breaker invariants, the sharded core
 * promises bit-identical reports at any shard count — checked here by
 * fingerprinting the run at @p shards against a 1-shard twin.
 */
void
runShardedClusterCheck(const workload::Catalog& catalog,
                       const exp::NamedPolicy& policy,
                       const std::vector<trace::Arrival>& arrivals,
                       const platform::NodeConfig& config,
                       std::size_t shards, const std::string& label)
{
    cluster::ClusterConfig clusterConfig;
    // Enough nodes that the requested shard count survives clamping.
    clusterConfig.nodes = std::max<std::size_t>(4, shards);
    clusterConfig.node = config;

    std::string fingerprints[2];
    const std::size_t counts[2] = {1, shards};
    for (std::size_t pass = 0; pass < 2; ++pass) {
        cluster::ShardedConfig sharded;
        sharded.shards = counts[pass];
        cluster::ShardedCluster cluster(catalog, policy.make,
                                        clusterConfig, sharded);
        const auto result = cluster.run(arrivals);
        const std::string passLabel = label + " shards=" +
                                      std::to_string(counts[pass]);

        std::uint64_t admitted = 0;
        std::uint64_t extracted = 0;
        std::size_t inFlight = 0;
        std::size_t peakQueue = 0;
        for (const auto& node : cluster.nodes()) {
            admitted += node->invoker().admittedInvocations();
            extracted += node->invoker().extractedInvocations();
            inFlight += node->invoker().inFlightInvocations();
            peakQueue =
                std::max(peakQueue, node->invoker().peakQueueDepth());
        }
        expect(extracted == result.reroutedInvocations,
               passLabel + ": extracted != rerouted");
        expect(cluster::conservation::admissionIdentity(
                   admitted, arrivals.size(),
                   result.reroutedInvocations, 0, 0),
               passLabel + ": admissions != arrivals + rerouted");
        expect(cluster::conservation::fleetConservation(
                   result.invocations, result.failedInvocations,
                   result.strandedInvocations, extracted,
                   result.rejectedInvocations, result.shedDeadline,
                   result.shedPressure, 0, admitted),
               passLabel + ": conservation broken");
        expect(inFlight == 0,
               passLabel + ": in-flight work survived");
        if (config.admission.maxQueueDepth > 0) {
            expect(peakQueue <= config.admission.maxQueueDepth,
                   passLabel + ": queue depth exceeded its bound");
        }
        for (std::size_t n = 0; n < cluster.breakers().size(); ++n) {
            checkBreakerTransitions(cluster.breakers()[n],
                                    passLabel + " node " +
                                        std::to_string(n));
        }

        std::ostringstream out;
        exp::writeClusterSummaryCsv(out, result);
        exp::writeClusterPerNodeCsv(out, result);
        fingerprints[pass] = out.str();
    }
    expect(fingerprints[0] == fingerprints[1],
           label + ": sharded report diverges from the 1-shard run");
}

/**
 * Gray-failure mode: a randomized NetworkPlan (injection + hedging +
 * quarantine) on the sharded core. Beyond conservation, the ticket
 * protocol promises exact hedge-pair accounting — no attempt is lost
 * or double-counted even when partitions, degraded windows, and
 * crashes interleave — and the shard 1-vs-4 twin must stay
 * byte-identical.
 */
void
runGrayClusterCheck(const workload::Catalog& catalog,
                    const exp::NamedPolicy& policy,
                    const std::vector<trace::Arrival>& arrivals,
                    const platform::NodeConfig& config,
                    const std::string& label)
{
    cluster::ClusterConfig clusterConfig;
    clusterConfig.nodes = 8;
    clusterConfig.node = config;

    std::string fingerprints[2];
    const std::size_t counts[2] = {1, 4};
    for (std::size_t pass = 0; pass < 2; ++pass) {
        cluster::ShardedConfig sharded;
        sharded.shards = counts[pass];
        cluster::ShardedCluster cluster(catalog, policy.make,
                                        clusterConfig, sharded);
        const auto result = cluster.run(arrivals);
        const std::string passLabel =
            label + " shards=" + std::to_string(counts[pass]);

        std::uint64_t admitted = 0;
        std::uint64_t extracted = 0;
        std::size_t inFlight = 0;
        for (const auto& node : cluster.nodes()) {
            admitted += node->invoker().admittedInvocations();
            extracted += node->invoker().extractedInvocations();
            inFlight += node->invoker().inFlightInvocations();
        }
        // Every dispatch — primary, failover re-issue, or hedge — is
        // delivered and admitted exactly once; messages delay, they
        // never vanish.
        expect(cluster::conservation::admissionIdentity(
                   admitted, arrivals.size(),
                   result.reroutedInvocations, result.hedgesLaunched,
                   result.retriesFeedback),
               passLabel + ": admissions != arrivals + rerouted + "
                           "hedges");
        // Conservation under partitions: every admitted attempt
        // terminates exactly one way. Duplicate completions of a
        // hedge pair both count as completions, so they need no term.
        expect(cluster::conservation::fleetConservation(
                   result.invocations, result.failedInvocations,
                   result.strandedInvocations, extracted,
                   result.rejectedInvocations, result.shedDeadline,
                   result.shedPressure, result.cancelledInvocations,
                   admitted),
               passLabel + ": gray conservation broken");
        // Hedge pairs settle exactly once: won, cancelled, or lost.
        expect(cluster::conservation::hedgeIdentity(
                   result.hedgesLaunched, result.hedgesWon,
                   result.hedgesCancelled, result.hedgesLost),
               passLabel + ": hedge pair double-counted or lost");
        expect(result.duplicateCompletions <= result.hedgesLaunched,
               passLabel + ": more duplicates than hedges");
        expect(result.wastedExecSeconds <=
                   result.totalExecSeconds + 1e-9,
               passLabel + ": wasted work exceeds total work");
        // A quarantined node may only receive probes (or serve as the
        // route of last resort when no healthy node remains).
        expect(result.quarantineViolations == 0,
               passLabel + ": quarantined node took a primary "
                           "dispatch");
        expect(inFlight == 0, passLabel + ": in-flight work survived");

        std::ostringstream out;
        exp::writeClusterSummaryCsv(out, result);
        exp::writeClusterPerNodeCsv(out, result);
        fingerprints[pass] = out.str();
    }
    expect(fingerprints[0] == fingerprints[1],
           label + ": gray report diverges from the 1-shard run");
}

/**
 * Correlated-domain mode: a randomized DomainPlan (outage waves,
 * rolling upgrades, staged rejoin, recovery prewarms, retry feedback)
 * on the sharded core. Beyond fleet conservation, the recovery
 * orchestrator promises exact episode accounting — every outaged or
 * drained node rejoins exactly once, every drain terminates, every
 * prewarm settles — and the shard 1-vs-4 twin must stay
 * byte-identical even though recovery decisions are made at barriers.
 */
void
runDomainClusterCheck(const workload::Catalog& catalog,
                      const exp::NamedPolicy& policy,
                      const std::vector<trace::Arrival>& arrivals,
                      const platform::NodeConfig& config,
                      std::size_t shards, const std::string& label)
{
    cluster::ClusterConfig clusterConfig;
    clusterConfig.nodes = 8;
    clusterConfig.node = config;

    std::string fingerprints[2];
    const std::size_t counts[2] = {1, std::max<std::size_t>(2, shards)};
    for (std::size_t pass = 0; pass < 2; ++pass) {
        cluster::ShardedConfig sharded;
        sharded.shards = counts[pass];
        cluster::ShardedCluster cluster(catalog, policy.make,
                                        clusterConfig, sharded);
        const auto result = cluster.run(arrivals);
        const std::string passLabel =
            label + " shards=" + std::to_string(counts[pass]);

        std::uint64_t admitted = 0;
        std::uint64_t extracted = 0;
        std::size_t inFlight = 0;
        for (const auto& node : cluster.nodes()) {
            admitted += node->invoker().admittedInvocations();
            extracted += node->invoker().extractedInvocations();
            inFlight += node->invoker().inFlightInvocations();
        }
        // Every admission has exactly one source: an arrival, a crash
        // re-route, or a client feedback retry (no hedging without a
        // network plan).
        expect(cluster::conservation::admissionIdentity(
                   admitted, arrivals.size(),
                   result.reroutedInvocations, result.hedgesLaunched,
                   result.retriesFeedback),
               passLabel + ": admissions != arrivals + rerouted + "
                           "retries");
        expect(cluster::conservation::fleetConservation(
                   result.invocations, result.failedInvocations,
                   result.strandedInvocations, extracted,
                   result.rejectedInvocations, result.shedDeadline,
                   result.shedPressure, result.cancelledInvocations,
                   admitted),
               passLabel + ": domain conservation broken");
        // Recovery accounting: every episode the orchestrator started
        // finished exactly once, and every planned drain terminated
        // gracefully or by the timeout kill.
        expect(cluster::conservation::recoveryIdentity(
                   result.recoveredNodes, result.outageNodeEpisodes,
                   result.upgradeEpisodes, result.nodesDrained,
                   result.nodesKilled),
               passLabel + ": recovery identity broken");
        expect(cluster::conservation::prewarmIdentity(
                   result.prewarmLayers, result.prewarmHit,
                   result.prewarmEvicted, result.prewarmWasted),
               passLabel + ": prewarm identity broken");
        expect(result.rejoinWaitSeconds >= 0.0,
               passLabel + ": negative rejoin wait");
        expect(inFlight == 0, passLabel + ": in-flight work survived");

        for (std::size_t n = 0; n < cluster.breakers().size(); ++n) {
            checkBreakerTransitions(cluster.breakers()[n],
                                    passLabel + " node " +
                                        std::to_string(n));
        }

        std::ostringstream out;
        exp::writeClusterSummaryCsv(out, result);
        exp::writeClusterPerNodeCsv(out, result);
        fingerprints[pass] = out.str();
    }
    expect(fingerprints[0] == fingerprints[1],
           label + ": domain report diverges from the 1-shard run");
}

[[noreturn]] void
usage(int code)
{
    std::cout << "chaos_check [--seed S] [--runs N] [--minutes M] "
                 "[--overload] [--gray] [--domains] [--shards N]\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t seed = 1;
    std::size_t runs = 4;
    std::size_t minutes = 20;
    std::size_t shards = 0;
    bool overload = false;
    bool gray = false;
    bool domains = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            usage(0);
        if (arg == "--overload") {
            overload = true;
            continue;
        }
        if (arg == "--gray") {
            gray = true;
            continue;
        }
        if (arg == "--domains") {
            domains = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << arg << "\n";
            usage(2);
        }
        const std::string value = argv[++i];
        if (arg == "--seed") {
            seed = std::stoull(value);
        } else if (arg == "--runs") {
            runs = std::stoul(value);
        } else if (arg == "--minutes") {
            minutes = std::stoul(value);
        } else if (arg == "--shards") {
            shards = std::stoul(value);
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage(2);
        }
    }

    const workload::Catalog catalog = workload::Catalog::standard20();
    const auto baselines = exp::standardBaselines(catalog);

    for (std::size_t r = 0; r < runs; ++r) {
        const std::uint64_t runSeed = seed + r * 7919;
        sim::Rng rng(runSeed);
        const fault::FaultPlan plan = randomPlan(rng);
        admission::AdmissionPlan admissionPlan =
            randomAdmissionPlan(rng);
        const auto& policy = baselines[static_cast<std::size_t>(
            rng.uniform() * static_cast<double>(baselines.size()))];

        trace::WorkloadTraceConfig traceConfig;
        traceConfig.minutes = minutes;
        traceConfig.targetInvocations =
            minutes * (overload ? 600 : 120);
        traceConfig.seed = runSeed;
        const auto arrivals = trace::expandArrivals(
            trace::generateAzureLike(catalog, traceConfig));

        platform::NodeConfig config;
        config.seed = runSeed;
        // A tight budget exercises queueing, shedding, and eviction
        // alongside the injected faults. The overload-heavy mode
        // quarters it and guarantees a bounded queue plus periodic
        // overload windows so the shedding paths always fire.
        config.pool.memoryBudgetMb =
            overload ? 2.0 * 1024.0 : 8.0 * 1024.0;
        // Cross-validate the pool's intrusive lookup indices against
        // a brute-force scan of the container map every few mutations
        // (auditIndices panics on any divergence); chaos runs churn
        // every FSM transition, which is exactly where a stale index
        // entry would hide.
        config.pool.auditEveryMutations = 64;
        config.fault = plan;
        if (overload) {
            if (admissionPlan.maxQueueDepth == 0)
                admissionPlan.maxQueueDepth = 32;
            if (admissionPlan.queueDeadlineSeconds <= 0.0)
                admissionPlan.queueDeadlineSeconds = 30.0;
            config.fault.overloadRatePerHour =
                std::max(config.fault.overloadRatePerHour, 6.0);
            config.fault.overloadSlowdown =
                std::max(config.fault.overloadSlowdown, 3.0);
        }
        config.admission = admissionPlan;
        if (gray)
            config.fault.network = randomNetworkPlan(rng);
        if (domains)
            config.fault.domain = randomDomainPlan(rng);

        const std::string label = "seed " + std::to_string(runSeed) +
                                  " policy " + policy.label;
        std::cout << "chaos_check: " << label << " ("
                  << arrivals.size() << " arrivals)\n";

        if (domains) {
            // Domain mode exercises the recovery orchestrator on the
            // sharded core only — the serial cores have no
            // coordinator to host it.
            runDomainClusterCheck(catalog, policy, arrivals, config,
                                  shards == 0 ? 4 : shards,
                                  label + " domains");
            continue;
        }

        if (gray) {
            // Gray mode exercises the network plan on the sharded
            // core only — the serial node/cluster cores do not speak
            // the ticket protocol.
            runGrayClusterCheck(catalog, policy, arrivals, config,
                                label + " gray");
            continue;
        }

        const Outcome first =
            runNode(catalog, policy, arrivals, config, label);
        const Outcome twin =
            runNode(catalog, policy, arrivals, config, label + " twin");
        expect(first == twin,
               label + ": twin run diverged (non-deterministic faults)");
        std::cout << "chaos_check:   completed " << first.completed
                  << ", failed " << first.failed << ", retries "
                  << first.retries << ", stranded " << first.stranded
                  << ", rejected " << first.rejected << ", shed "
                  << first.shedDeadline + first.shedPressure
                  << ", peak queue " << first.peakQueueDepth << "\n";

        runClusterCheck(catalog, policy, arrivals, config,
                        label + " cluster");
        if (shards > 0) {
            runShardedClusterCheck(catalog, policy, arrivals, config,
                                   shards, label + " sharded");
        }
    }

    if (gFailures == 0) {
        std::cout << "chaos_check: all invariants held over " << runs
                  << " runs\n";
        return 0;
    }
    std::cerr << "chaos_check: " << gFailures << " invariant failures\n";
    return 1;
}
