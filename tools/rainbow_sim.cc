/**
 * @file
 * rainbow_sim — command-line driver for the RainbowCake simulator.
 *
 * Runs one policy over one workload and prints the summary table,
 * optional timelines, and optional per-function breakdowns. Typical
 * uses:
 *
 *   rainbow_sim                                   # defaults
 *   rainbow_sim --policy openwhisk --minutes 480
 *   rainbow_sim --policy rainbowcake --checkpoint --budget-gb 64
 *   rainbow_sim --cv 2.0                          # a Fig.12 trace
 *   rainbow_sim --trace my_azure.csv --minutes 1440
 *   rainbow_sim --all --timelines                 # all six baselines
 */

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "admission/admission_plan.hh"
#include "core/ablations.hh"
#include "core/checkpoint.hh"
#include "fault/domain_plan.hh"
#include "fault/fault_plan.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "exp/cluster_run.hh"
#include "exp/experiment.hh"
#include "exp/parallel_runner.hh"
#include "exp/csv.hh"
#include "exp/report.hh"
#include "exp/standard_traces.hh"
#include "stats/table.hh"
#include "trace/arrival_source.hh"
#include "trace/azure_io.hh"
#include "trace/replay.hh"
#include "trace/generator.hh"
#include "trace/sampler.hh"
#include "workload/catalog.hh"
#include "workload/catalog_io.hh"

namespace {

using namespace rc;

struct Options
{
    std::string policy = "rainbowcake";
    bool all = false;
    bool checkpoint = false;
    bool timelines = false;
    bool perFunction = false;
    std::size_t minutes = 480;
    std::uint64_t invocations = 0; // 0: scale with minutes
    double budgetGb = 240.0;
    std::uint64_t seed = 20240427;
    double cv = -1.0;          // >= 0: use a CV-targeted trace
    std::string traceFile;     // non-empty: load Azure CSV
    std::string csvDir;        // non-empty: dump CSVs per policy
    std::string catalogFile;   // non-empty: load a custom catalog CSV
    std::size_t threads = 0;   // 0: ParallelRunner default
    std::string traceOut;      // non-empty: write Chrome trace JSON
    std::string eventsOut;     // non-empty: write JSONL event dump
    std::string spansOut;      // non-empty: write JSONL span dump
    std::string reportJson;    // non-empty: write machine-readable report
    std::size_t maxEvents = 0; // event-buffer cap; 0 = unlimited
    std::size_t maxSpans = 0;  // span-buffer cap; 0 = unlimited
    std::string faultPlan;     // non-empty: load a fault plan file
    std::string admissionPlan; // non-empty: load an admission plan file
    std::string domainPlan;    // non-empty: load a domain plan file
    double obsIntervalSeconds = 60.0; // counter snapshot interval
    std::size_t nodes = 0;     // > 0: cluster mode
    std::size_t shards = 0;    // > 0: sharded parallel cluster core
    bool stream = false;       // cluster mode: pull-based arrivals
    bool phaseTimings = false; // cluster mode: coordinator breakdown
    std::string scheduling = "locality-aware"; // cluster routing

    /** Any artifact flag turns instrumentation on. */
    bool
    observabilityEnabled() const
    {
        return !traceOut.empty() || !eventsOut.empty() ||
               !spansOut.empty() || !reportJson.empty();
    }
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "rainbow_sim [options]\n"
        "  --policy NAME     openwhisk | histogram | faascache | seuss |\n"
        "                    pagurus | rainbowcake | rc-nosharing |\n"
        "                    rc-nolayers (default rainbowcake)\n"
        "  --all             run all six baselines and compare\n"
        "  --checkpoint      wrap the policy with checkpoint/restore\n"
        "  --minutes N       trace horizon (default 480)\n"
        "  --invocations N   target invocation count (default 16.7/min)\n"
        "  --budget-gb G     node memory budget (default 240)\n"
        "  --seed S          trace seed (default 20240427)\n"
        "  --cv C            use a CV-targeted 1-hour trace instead\n"
        "  --trace FILE      load an Azure-format CSV trace\n"
        "  --catalog FILE    load a custom function-catalog CSV\n"
        "  --threads N       worker threads for --all sweeps\n"
        "                    (default: RC_THREADS or all cores)\n"
        "  --timelines       print waste/latency timelines\n"
        "  --csv-dir DIR     write per-policy CSV dumps into DIR\n"
        "  --per-function    print per-function latency averages\n"
        "  --trace-out FILE  write a Chrome trace (Perfetto-loadable);\n"
        "                    with --all, files are tagged per policy\n"
        "  --events-out FILE write a JSONL structured event dump\n"
        "  --spans-out FILE  write a JSONL per-invocation span dump\n"
        "                    (schema rainbowcake-spans-v1; feed it to\n"
        "                    trace_analyze for cold-start attribution)\n"
        "  --max-events N    cap the event buffer at N (0 = unlimited);\n"
        "                    overflow counts into trace_dropped\n"
        "  --max-spans N     cap the span buffer at N (0 = unlimited)\n"
        "  --report-json FILE\n"
        "                    write the comparison as JSON\n"
        "                    (schema rainbowcake-report-v1)\n"
        "  --obs-interval S  counter snapshot interval in seconds\n"
        "                    (default 60)\n"
        "  --nodes N         cluster mode: route the trace across N\n"
        "                    worker nodes (budget-gb is per node)\n"
        "  --shards N        cluster mode: step nodes in N parallel\n"
        "                    shards (results are bit-identical at any\n"
        "                    N >= 1; 0 = legacy serial core)\n"
        "  --stream          cluster mode: pull arrivals from the\n"
        "                    trace lazily instead of materializing\n"
        "                    them (O(window) memory, bit-identical\n"
        "                    results; always uses the sharded core)\n"
        "  --phase-timings   cluster mode: measure the coordinator\n"
        "                    wall-clock breakdown and, with --csv-dir,\n"
        "                    write coordinator_phases.csv (the numbers\n"
        "                    are host-dependent; the pinned CSVs stay\n"
        "                    byte-identical either way)\n"
        "  --scheduling P    round-robin | least-loaded |\n"
        "                    locality-aware (default)\n"
        "  --fault-plan FILE inject faults per the plan (flat JSON;\n"
        "                    see src/fault/fault_plan.hh for knobs)\n"
        "  --admission-plan FILE\n"
        "                    overload control per the plan (flat JSON;\n"
        "                    see src/admission/admission_plan.hh)\n"
        "  --domain-plan FILE\n"
        "                    correlated failure domains + recovery\n"
        "                    orchestration (nested JSON; see\n"
        "                    src/fault/domain_plan.hh); needs --nodes\n"
        "  --help            this text\n";
    std::exit(code);
}

Options
parseArgs(int argc, char** argv)
{
    Options options;
    auto need = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    std::string arg;
    try {
        for (int i = 1; i < argc; ++i) {
            arg = argv[i];
            if (arg == "--policy") {
                options.policy = need(i);
            } else if (arg == "--all") {
                options.all = true;
            } else if (arg == "--checkpoint") {
                options.checkpoint = true;
            } else if (arg == "--minutes") {
                options.minutes = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--invocations") {
                options.invocations = std::stoull(need(i));
            } else if (arg == "--budget-gb") {
                options.budgetGb = std::stod(need(i));
            } else if (arg == "--seed") {
                options.seed = std::stoull(need(i));
            } else if (arg == "--cv") {
                options.cv = std::stod(need(i));
            } else if (arg == "--trace") {
                options.traceFile = need(i);
            } else if (arg == "--catalog") {
                options.catalogFile = need(i);
            } else if (arg == "--csv-dir") {
                options.csvDir = need(i);
            } else if (arg == "--threads") {
                options.threads = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--trace-out") {
                options.traceOut = need(i);
            } else if (arg == "--events-out") {
                options.eventsOut = need(i);
            } else if (arg == "--spans-out") {
                options.spansOut = need(i);
            } else if (arg == "--max-events") {
                options.maxEvents = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--max-spans") {
                options.maxSpans = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--report-json") {
                options.reportJson = need(i);
            } else if (arg == "--fault-plan") {
                options.faultPlan = need(i);
            } else if (arg == "--admission-plan") {
                options.admissionPlan = need(i);
            } else if (arg == "--domain-plan") {
                options.domainPlan = need(i);
            } else if (arg == "--nodes") {
                options.nodes = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--shards") {
                options.shards = static_cast<std::size_t>(
                    std::stoul(need(i)));
            } else if (arg == "--stream") {
                options.stream = true;
            } else if (arg == "--phase-timings") {
                options.phaseTimings = true;
            } else if (arg == "--scheduling") {
                options.scheduling = need(i);
            } else if (arg == "--obs-interval") {
                options.obsIntervalSeconds = std::stod(need(i));
                if (options.obsIntervalSeconds <= 0.0)
                    throw std::invalid_argument("non-positive interval");
            } else if (arg == "--timelines") {
                options.timelines = true;
            } else if (arg == "--per-function") {
                options.perFunction = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::cerr << "unknown option " << arg << "\n";
                usage(2);
            }
        }
    } catch (const std::invalid_argument&) {
        std::cerr << "bad value for " << arg << "\n";
        usage(2);
    } catch (const std::out_of_range&) {
        std::cerr << "value out of range for " << arg << "\n";
        usage(2);
    }
    return options;
}

cluster::Scheduling
parseScheduling(const std::string& name)
{
    if (name == "round-robin")
        return cluster::Scheduling::RoundRobin;
    if (name == "least-loaded")
        return cluster::Scheduling::LeastLoaded;
    if (name == "locality-aware")
        return cluster::Scheduling::LocalityAware;
    std::cerr << "unknown scheduling '" << name << "'\n";
    usage(2);
}

obs::ObserverConfig observerConfig(const Options& options);
std::string policySlug(const std::string& name);

/** Cluster mode: route the trace across nodes, print, dump CSVs. */
int
runClusterMode(const Options& options, const workload::Catalog& catalog,
               const trace::TraceSet& traceSet,
               platform::NodeConfig nodeConfig,
               const exp::PolicyFactory& factory)
{
    exp::ClusterRunConfig config;
    config.nodes = options.nodes;
    config.scheduling = parseScheduling(options.scheduling);
    config.shards = options.shards;
    config.threads = options.threads;

    // The cluster harness keeps this observer for routing events and
    // for the merged per-node span buffers (the nodes themselves run
    // uninstrumented; see Cluster's ctor).
    std::unique_ptr<obs::Observer> observer;
    if (options.observabilityEnabled()) {
        observer = std::make_unique<obs::Observer>(
            observerConfig(options));
        observer->setRunId(policySlug(options.policy));
        nodeConfig.observer = observer.get();
    }
    config.node = nodeConfig;
    config.phaseTimings = options.phaseTimings;

    cluster::ClusterResult result;
    if (options.stream) {
        // Pull-based: the coordinator holds only the current window's
        // arrivals; the TraceSet's per-minute buckets are the compact
        // backing store.
        trace::TraceSetArrivalSource source(traceSet);
        result = exp::runCluster(catalog, factory, source, config);
    } else {
        const auto arrivals = trace::expandArrivals(traceSet);
        result = exp::runCluster(catalog, factory, arrivals, config);
    }

    std::cout << "cluster: " << options.nodes << " nodes, "
              << result.schedulingName << " routing";
    if (options.shards > 0)
        std::cout << ", " << options.shards << " shards ("
                  << result.windows << " windows)";
    std::cout << "\n"
              << "  invocations " << result.invocations << " (cold "
              << result.coldStarts << ", mean startup "
              << result.meanStartupSeconds << " s)\n"
              << "  waste " << result.totalWasteMbSeconds / 1024.0
              << " GB*s, stranded " << result.strandedInvocations
              << "\n"
              << "  crashes " << result.nodeCrashes << ", rerouted "
              << result.reroutedInvocations << ", failed "
              << result.failedInvocations << "\n"
              << "  rejected " << result.rejectedInvocations
              << ", shed " << result.shedDeadline << "+"
              << result.shedPressure << ", breaker opens "
              << result.breakerOpens << "\n"
              << "  admitted " << result.admittedInvocations
              << ", engine events " << result.engineEvents << "\n"
              << "  e2e sketch p50 " << result.e2eP50Seconds
              << " s, p99 " << result.e2eP99Seconds << " s\n";
    if (options.phaseTimings) {
        std::cout << "  coordinator " << result.coordinatorDrainNs
                  << " ns (route " << result.routeNs << ", summary "
                  << result.summaryCaptureNs << "), parallel "
                  << result.parallelNs << " ns, serial fraction "
                  << result.serialFraction << "\n";
    }

    if (observer != nullptr) {
        if (!options.traceOut.empty()) {
            std::ofstream out(options.traceOut);
            if (!out) {
                std::cerr << "cannot write " << options.traceOut << "\n";
                return 2;
            }
            obs::writeChromeTrace(out, *observer);
            std::cout << "chrome trace written to " << options.traceOut
                      << "\n";
        }
        if (!options.eventsOut.empty()) {
            std::ofstream out(options.eventsOut);
            if (!out) {
                std::cerr << "cannot write " << options.eventsOut
                          << "\n";
                return 2;
            }
            obs::writeJsonlEvents(out, *observer);
            std::cout << "event dump written to " << options.eventsOut
                      << "\n";
        }
        if (!options.spansOut.empty()) {
            std::ofstream out(options.spansOut);
            if (!out) {
                std::cerr << "cannot write " << options.spansOut << "\n";
                return 2;
            }
            obs::writeJsonlSpans(out, *observer);
            std::cout << "span dump written to " << options.spansOut
                      << "\n";
        }
        if (!options.reportJson.empty()) {
            std::cerr << "--report-json is per-policy output; not "
                         "written in cluster mode\n";
        }
    }

    if (!options.csvDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.csvDir, ec);
        if (ec) {
            std::cerr << "cannot create --csv-dir " << options.csvDir
                      << ": " << ec.message() << "\n";
            return 2;
        }
        std::ofstream summary(options.csvDir + "/cluster_summary.csv");
        exp::writeClusterSummaryCsv(summary, result);
        std::ofstream perNode(options.csvDir + "/cluster_per_node.csv");
        exp::writeClusterPerNodeCsv(perNode, result);
        if (options.phaseTimings) {
            // Sidecar, never part of the byte-diffed determinism set:
            // wall-clock numbers differ run to run by construction.
            std::ofstream phases(options.csvDir +
                                 "/coordinator_phases.csv");
            phases << "coordinator_drain_ns,route_ns,"
                      "summary_capture_ns,parallel_ns,serial_fraction\n"
                   << result.coordinatorDrainNs << ','
                   << result.routeNs << ',' << result.summaryCaptureNs
                   << ',' << result.parallelNs << ','
                   << result.serialFraction << '\n';
        }
        std::cout << "\nCSV dumps written to " << options.csvDir << "\n";
    }
    return 0;
}

exp::PolicyFactory
makeFactory(const std::string& name, const workload::Catalog& catalog,
            bool checkpoint)
{
    exp::PolicyFactory base;
    for (const auto& policy : exp::standardBaselines(catalog)) {
        std::string key = policy.label;
        for (auto& c : key)
            c = static_cast<char>(std::tolower(c));
        if (key == name)
            base = policy.make;
    }
    if (name == "rc-nosharing") {
        base = [&catalog] { return core::makeRainbowCakeNoSharing(catalog); };
    } else if (name == "rc-nolayers") {
        base = [&catalog] { return core::makeRainbowCakeNoLayers(catalog); };
    }
    if (!base) {
        std::cerr << "unknown policy '" << name << "'\n";
        usage(2);
    }
    if (!checkpoint)
        return base;
    return [base] {
        return std::make_unique<core::CheckpointPolicy>(base());
    };
}

trace::TraceSet
buildTrace(const Options& options, const workload::Catalog& catalog)
{
    if (!options.traceFile.empty()) {
        std::ifstream in(options.traceFile);
        if (!in) {
            std::cerr << "cannot open " << options.traceFile << "\n";
            std::exit(2);
        }
        return trace::loadAzureCsv(in, catalog, options.minutes);
    }
    if (options.cv >= 0.0) {
        trace::CvSampleConfig config;
        config.minutes = options.minutes;
        config.invocations = options.invocations
                                 ? options.invocations
                                 : options.minutes * 60;
        config.targetCv = options.cv;
        config.seed = options.seed;
        return trace::sampleWithTargetCv(catalog, config);
    }
    trace::WorkloadTraceConfig config;
    config.minutes = options.minutes;
    config.targetInvocations =
        options.invocations ? options.invocations
                            : options.minutes * 50 / 3;
    config.seed = options.seed;
    return trace::generateAzureLike(catalog, config);
}

std::string
policySlug(const std::string& name)
{
    std::string slug = name;
    for (auto& c : slug) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return slug;
}

/** "trace.json" + tag "seuss" -> "trace.seuss.json" (multi-run). */
std::string
taggedPath(const std::string& path, const std::string& tag, bool multiple)
{
    if (!multiple || tag.empty())
        return path;
    const auto dot = path.rfind('.');
    const auto slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "." + tag;
    }
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

obs::ObserverConfig
observerConfig(const Options& options)
{
    obs::ObserverConfig config;
    // The event buffer is only worth filling when an event artifact
    // was requested; counters and profiling are cheap and always on.
    config.traceEnabled =
        !options.traceOut.empty() || !options.eventsOut.empty();
    config.profilingEnabled = true;
    config.counterInterval = sim::fromSeconds(options.obsIntervalSeconds);
    config.maxEvents = options.maxEvents;
    config.spansEnabled = !options.spansOut.empty();
    config.maxSpans = options.maxSpans;
    return config;
}

void
writeArtifacts(const Options& options,
               const std::vector<exp::RunResult>& results)
{
    const bool multiple = results.size() > 1;
    for (const auto& result : results) {
        obs::Observer* observer = result.observer;
        if (observer == nullptr)
            continue;
        const obs::ScopedTimer timer(observer->profiler(),
                                     obs::Scope::Export);
        if (!options.traceOut.empty()) {
            const std::string path =
                taggedPath(options.traceOut, result.runId, multiple);
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write " << path << "\n";
                std::exit(2);
            }
            obs::writeChromeTrace(out, *observer);
            std::cout << "chrome trace written to " << path << "\n";
        }
        if (!options.eventsOut.empty()) {
            const std::string path =
                taggedPath(options.eventsOut, result.runId, multiple);
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write " << path << "\n";
                std::exit(2);
            }
            obs::writeJsonlEvents(out, *observer);
            std::cout << "event dump written to " << path << "\n";
        }
        if (!options.spansOut.empty()) {
            const std::string path =
                taggedPath(options.spansOut, result.runId, multiple);
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write " << path << "\n";
                std::exit(2);
            }
            obs::writeJsonlSpans(out, *observer);
            std::cout << "span dump written to " << path << "\n";
        }
    }
    // The report aggregates all runs, so it is written once, last —
    // after the per-run exports above charged their Export scopes.
    if (!options.reportJson.empty()) {
        std::ofstream out(options.reportJson);
        if (!out) {
            std::cerr << "cannot write " << options.reportJson << "\n";
            std::exit(2);
        }
        exp::writeReportJson(out, "rainbow_sim", results);
        std::cout << "report written to " << options.reportJson << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const Options options = parseArgs(argc, argv);
    if (options.shards > 0 && options.nodes == 0) {
        std::cerr << "--shards requires --nodes\n";
        return 2;
    }
    if ((options.stream || options.phaseTimings) && options.nodes == 0) {
        std::cerr << "--stream and --phase-timings require --nodes\n";
        return 2;
    }
    workload::Catalog catalog = workload::Catalog::standard20();
    if (!options.catalogFile.empty()) {
        std::ifstream in(options.catalogFile);
        if (!in) {
            std::cerr << "cannot open " << options.catalogFile << "\n";
            return 2;
        }
        catalog = workload::loadCatalogCsv(in);
        std::cout << "loaded custom catalog: " << catalog.size()
                  << " functions\n";
    }
    const auto traceSet = buildTrace(options, catalog);

    std::cout << "workload: " << traceSet.totalInvocations()
              << " invocations / " << traceSet.durationMinutes()
              << " min; node budget " << options.budgetGb << " GB\n\n";

    platform::NodeConfig nodeConfig;
    nodeConfig.pool.memoryBudgetMb = options.budgetGb * 1024.0;
    if (!options.faultPlan.empty()) {
        std::string error;
        if (!fault::loadFaultPlanFile(options.faultPlan,
                                      nodeConfig.fault, &error)) {
            std::cerr << "bad fault plan: " << error << "\n";
            return 2;
        }
        std::cout << "fault plan loaded from " << options.faultPlan
                  << (nodeConfig.fault.active() ? "" : " (all knobs zero)")
                  << "\n";
    }
    if (!options.admissionPlan.empty()) {
        std::string error;
        if (!admission::loadAdmissionPlanFile(options.admissionPlan,
                                              nodeConfig.admission,
                                              &error)) {
            std::cerr << "bad admission plan: " << error << "\n";
            return 2;
        }
        std::cout << "admission plan loaded from "
                  << options.admissionPlan
                  << (nodeConfig.admission.active() ? ""
                                                    : " (all knobs zero)")
                  << "\n";
    }
    if (!options.domainPlan.empty()) {
        if (options.nodes == 0) {
            std::cerr << "--domain-plan requires --nodes\n";
            return 2;
        }
        std::string error;
        if (!fault::loadDomainPlanFile(options.domainPlan,
                                       nodeConfig.fault.domain,
                                       &error)) {
            std::cerr << "bad domain plan: " << error << "\n";
            return 2;
        }
        if (!fault::validateDomainPlan(nodeConfig.fault.domain,
                                       options.nodes, &error)) {
            std::cerr << "bad domain plan: " << error << "\n";
            return 2;
        }
        std::cout << "domain plan loaded from " << options.domainPlan
                  << (nodeConfig.fault.domain.active()
                          ? "" : " (all knobs zero)")
                  << "\n";
    }

    if (options.nodes > 0) {
        return runClusterMode(
            options, catalog, traceSet, nodeConfig,
            makeFactory(options.policy, catalog, options.checkpoint));
    }
    // One Observer per run (never shared: an Observer is single-run
    // state); kept alive here because RunResult::observer only points.
    std::vector<std::unique_ptr<obs::Observer>> observers;

    std::vector<exp::RunResult> results;
    if (options.all) {
        // Fan the six baselines out across cores; results come back
        // in submission order and are identical to a sequential run.
        const auto arrivals = trace::expandArrivals(traceSet);
        std::vector<exp::RunSpec> specs;
        for (const auto& policy : exp::standardBaselines(catalog)) {
            auto factory = options.checkpoint
                ? makeFactory([&] {
                      std::string key = policy.label;
                      for (auto& c : key)
                          c = static_cast<char>(std::tolower(c));
                      return key;
                  }(), catalog, true)
                : policy.make;
            exp::RunSpec spec{&catalog, std::move(factory), &arrivals,
                              nodeConfig, {}};
            if (options.observabilityEnabled()) {
                observers.push_back(std::make_unique<obs::Observer>(
                    observerConfig(options)));
                spec.config.observer = observers.back().get();
                spec.runId = policySlug(policy.label);
            }
            specs.push_back(std::move(spec));
        }
        results = exp::ParallelRunner(options.threads).run(specs);
    } else {
        if (options.observabilityEnabled()) {
            observers.push_back(std::make_unique<obs::Observer>(
                observerConfig(options)));
            observers.back()->setRunId(policySlug(options.policy));
            nodeConfig.observer = observers.back().get();
        }
        results.push_back(exp::runExperiment(
            catalog,
            makeFactory(options.policy, catalog, options.checkpoint),
            traceSet, nodeConfig));
    }

    exp::printSummaryTable(std::cout, "rainbow_sim", results);

    if (options.observabilityEnabled())
        writeArtifacts(options, results);

    if (!options.csvDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.csvDir, ec);
        if (ec) {
            std::cerr << "cannot create --csv-dir " << options.csvDir
                      << ": " << ec.message() << "\n";
            return 2;
        }
        std::ofstream summary(options.csvDir + "/summary.csv");
        exp::writeSummaryCsv(summary, results);
        for (const auto& result : results) {
            std::string slug = result.policyName;
            for (auto& c : slug) {
                if (!std::isalnum(static_cast<unsigned char>(c)))
                    c = '_';
            }
            std::ofstream inv(options.csvDir + "/" + slug +
                              "_invocations.csv");
            exp::writeInvocationsCsv(inv, result.metrics);
            std::ofstream waste(options.csvDir + "/" + slug +
                                "_waste.csv");
            exp::writeWasteCsv(waste, result.waste);
        }
        std::cout << "\nCSV dumps written to " << options.csvDir << "\n";
    }

    if (options.timelines) {
        for (const auto& result : results) {
            std::cout << "\n== " << result.policyName << " ==\n";
            exp::printTimeline(std::cout, "memory waste (MB*s/min)",
                               result.waste.timeline(), 24);
            exp::printTimeline(std::cout, "cumulative E2E latency (s)",
                               result.metrics.endToEndTimeline(), 24,
                               /*cumulative=*/true);
        }
    }
    if (options.perFunction) {
        for (const auto& result : results) {
            stats::Table table(result.policyName +
                               ": per-function averages (s)");
            table.setHeader({"Function", "MeanStartup", "MeanE2E",
                             "Invocations"});
            for (const auto& profile : catalog) {
                const auto startup =
                    result.metrics.startupByFunction(profile.id());
                const auto e2e =
                    result.metrics.endToEndByFunction(profile.id());
                table.row()
                    .text(profile.shortName())
                    .num(startup.mean(), 3)
                    .num(e2e.mean(), 3)
                    .integer(static_cast<long long>(startup.count()));
            }
            std::cout << '\n';
            table.print(std::cout);
        }
    }
    return 0;
}
