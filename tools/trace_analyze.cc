/**
 * @file
 * trace_analyze — fold a `rainbowcake-spans-v1` span dump into a
 * `rainbowcake-attribution-v1` cold-start attribution report.
 *
 *   trace_analyze [--out FILE] [--allow-drops] SPANS.jsonl [MORE...]
 *
 * Each input file becomes one run entry (CI feeds one tagged dump per
 * policy). Per run, every invocation's end-to-end latency is broken
 * into the span stages that tile its root interval — queue wait,
 * per-layer init (bare/lang/user), in-flight-init latch wait,
 * dispatch overhead, execution — plus a `retry` component that pools
 * backoff waits and aborted attempts. The report carries fleet-wide
 * and per-function breakdowns; distribution latencies (p50/p99) come
 * from mergeable quantile sketches (1% relative error), means are
 * exact.
 *
 * The tool re-validates the span-tree invariants (one root per
 * invocation, causal parent links, conservation tiling) and exits
 * nonzero if any fail, if per-invocation components do not sum
 * exactly to the root interval, or if the dump recorded drops
 * (incomplete dumps cannot be attributed; --allow-drops overrides).
 */

#include <array>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "sim/time.hh"
#include "stats/quantile_sketch.hh"

namespace {

using namespace rc;

/** Attribution components: the span stages plus pooled `retry`. */
enum class Component : std::size_t
{
    Queue,
    InitWait,
    InitBare,
    InitLang,
    InitUser,
    Dispatch,
    Exec,
    Retry,
};

constexpr std::size_t kComponentCount =
    static_cast<std::size_t>(Component::Retry) + 1;

const char*
componentName(std::size_t c)
{
    static const char* kNames[kComponentCount] = {
        "queue",    "init_wait", "init_bare", "init_lang",
        "init_user", "dispatch",  "exec",      "retry",
    };
    return kNames[c];
}

/** Stage -> component; aborted attempts and backoff pool as retry. */
std::size_t
componentOf(const obs::Span& span)
{
    if ((span.flags & obs::kSpanAborted) != 0 ||
        span.stage == obs::SpanStage::Backoff)
        return static_cast<std::size_t>(Component::Retry);
    switch (span.stage) {
      case obs::SpanStage::Queue:
        return static_cast<std::size_t>(Component::Queue);
      case obs::SpanStage::InitWait:
        return static_cast<std::size_t>(Component::InitWait);
      case obs::SpanStage::InitBare:
        return static_cast<std::size_t>(Component::InitBare);
      case obs::SpanStage::InitLang:
        return static_cast<std::size_t>(Component::InitLang);
      case obs::SpanStage::InitUser:
        return static_cast<std::size_t>(Component::InitUser);
      case obs::SpanStage::Dispatch:
        return static_cast<std::size_t>(Component::Dispatch);
      case obs::SpanStage::Exec:
        return static_cast<std::size_t>(Component::Exec);
      case obs::SpanStage::Backoff:
      case obs::SpanStage::Invocation: break;
    }
    return static_cast<std::size_t>(Component::Retry);
}

/** One latency track: exact count/total, sketched distribution. */
struct Track
{
    std::uint64_t count = 0;
    double totalSeconds = 0.0;
    stats::QuantileSketch sketch;

    void
    add(double seconds)
    {
        ++count;
        totalSeconds += seconds;
        sketch.add(seconds);
    }

    double mean() const
    {
        return count > 0 ? totalSeconds / static_cast<double>(count)
                         : 0.0;
    }
};

struct FunctionStats
{
    std::uint64_t invocations = 0;
    Track e2e;
    std::array<double, kComponentCount> componentSeconds{};
};

struct RunStats
{
    std::string label;
    std::string source;
    std::size_t spans = 0;
    std::uint64_t dropped = 0;
    std::uint64_t invocations = 0;
    std::array<std::uint64_t, obs::kSpanOutcomeCount> outcomes{};
    Track e2e;
    std::array<Track, kComponentCount> components;
    std::map<std::uint32_t, FunctionStats> functions;
};

std::string
labelOf(const std::string& path)
{
    std::string stem = path;
    const auto slash = stem.rfind('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    const auto dot = stem.rfind('.');
    if (dot != std::string::npos && dot > 0)
        stem = stem.substr(0, dot);
    return stem;
}

/** Analyze one dump; false (with message on stderr) on any failure. */
bool
analyzeFile(const std::string& path, bool allowDrops, RunStats& run)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_analyze: cannot open " << path << "\n";
        return false;
    }
    std::string error;
    std::uint64_t dropped = 0;
    const auto spans = obs::parseJsonlSpans(in, &error, &dropped);
    if (!error.empty()) {
        std::cerr << "trace_analyze: " << path << ": " << error << "\n";
        return false;
    }
    if (dropped > 0 && !allowDrops) {
        std::cerr << "trace_analyze: " << path << ": " << dropped
                  << " spans dropped; attribution would be incomplete "
                     "(raise --max-spans, or pass --allow-drops)\n";
        return false;
    }
    if (!obs::validateSpanTree(spans, &error)) {
        std::cerr << "trace_analyze: " << path << ": " << error << "\n";
        return false;
    }

    run.label = labelOf(path);
    run.source = path;
    run.spans = spans.size();
    run.dropped = dropped;

    // validateSpanTree proved the (invocation, id) sort and the
    // conservation tiling, so one linear pass attributes everything:
    // spans of one invocation are contiguous with the root first.
    std::size_t i = 0;
    while (i < spans.size()) {
        const obs::Span& root = spans[i];
        const double e2e = sim::toSeconds(root.end - root.start);
        ++run.invocations;
        ++run.outcomes[root.info % obs::kSpanOutcomeCount];
        run.e2e.add(e2e);
        FunctionStats& fn = run.functions[root.function];
        ++fn.invocations;
        fn.e2e.add(e2e);

        std::array<double, kComponentCount> parts{};
        double sum = 0.0;
        for (++i; i < spans.size() &&
                  spans[i].invocation == root.invocation;
             ++i) {
            const obs::Span& span = spans[i];
            const double seconds = sim::toSeconds(span.end - span.start);
            parts[componentOf(span)] += seconds;
            sum += seconds;
        }
        // Redundant with the tree check's tiling pass, but this is
        // the exact identity the report publishes, so enforce it in
        // the tool that writes the report too.
        if (sim::fromSeconds(sum) != root.end - root.start &&
            std::abs(sum - e2e) > 1e-9) {
            std::cerr << "trace_analyze: " << path << ": invocation "
                      << root.invocation << ": components sum to "
                      << sum << " s but end-to-end is " << e2e << " s\n";
            return false;
        }
        for (std::size_t c = 0; c < kComponentCount; ++c) {
            if (parts[c] <= 0.0)
                continue;
            run.components[c].add(parts[c]);
            fn.componentSeconds[c] += parts[c];
        }
    }
    return true;
}

void
writeTrack(std::ostream& os, const Track& track)
{
    os << "{\"count\": " << track.count << ", \"total_s\": "
       << track.totalSeconds << ", \"mean_s\": " << track.mean()
       << ", \"p50_s\": "
       << (track.count > 0 ? track.sketch.median() : 0.0)
       << ", \"p99_s\": " << (track.count > 0 ? track.sketch.p99() : 0.0)
       << "}";
}

void
writeReport(std::ostream& os, const std::vector<RunStats>& runs)
{
    os << "{\n  \"schema\": \"rainbowcake-attribution-v1\",\n"
       << "  \"runs\": [\n";
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const RunStats& run = runs[r];
        os << "    {\n      \"label\": \"" << obs::jsonEscape(run.label)
           << "\",\n      \"source\": \"" << obs::jsonEscape(run.source)
           << "\",\n      \"spans\": " << run.spans
           << ",\n      \"dropped\": " << run.dropped
           << ",\n      \"invocations\": " << run.invocations
           << ",\n      \"outcomes\": {";
        bool first = true;
        for (std::size_t o = 1; o < obs::kSpanOutcomeCount; ++o) {
            os << (first ? "" : ", ") << '"'
               << obs::toString(static_cast<obs::SpanOutcome>(o))
               << "\": " << run.outcomes[o];
            first = false;
        }
        os << "},\n      \"e2e\": ";
        writeTrack(os, run.e2e);
        os << ",\n      \"components\": {";
        for (std::size_t c = 0; c < kComponentCount; ++c) {
            os << (c == 0 ? "" : ", ") << '"' << componentName(c)
               << "\": ";
            writeTrack(os, run.components[c]);
        }
        os << "},\n      \"functions\": [\n";
        std::size_t f = 0;
        for (const auto& [function, fn] : run.functions) {
            os << "        {\"function\": " << function
               << ", \"invocations\": " << fn.invocations
               << ", \"mean_e2e_s\": " << fn.e2e.mean()
               << ", \"p50_e2e_s\": " << fn.e2e.sketch.median()
               << ", \"p99_e2e_s\": " << fn.e2e.sketch.p99()
               << ", \"mean_components_s\": {";
            for (std::size_t c = 0; c < kComponentCount; ++c) {
                os << (c == 0 ? "" : ", ") << '"' << componentName(c)
                   << "\": "
                   << (fn.invocations > 0
                           ? fn.componentSeconds[c] /
                                 static_cast<double>(fn.invocations)
                           : 0.0);
            }
            os << "}}" << (++f < run.functions.size() ? "," : "")
               << "\n";
        }
        os << "      ]\n    }" << (r + 1 < runs.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

[[noreturn]] void
usage(int code)
{
    std::cout << "trace_analyze [--out FILE] [--allow-drops] "
                 "SPANS.jsonl [MORE.jsonl ...]\n"
                 "  Folds rainbowcake-spans-v1 dumps into a\n"
                 "  rainbowcake-attribution-v1 report (stdout unless\n"
                 "  --out). Exits nonzero on malformed dumps, span-tree\n"
                 "  violations, or recorded drops.\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string outPath;
    bool allowDrops = false;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --out\n";
                usage(2);
            }
            outPath = argv[++i];
        } else if (arg == "--allow-drops") {
            allowDrops = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option " << arg << "\n";
            usage(2);
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        usage(2);

    std::vector<RunStats> runs;
    for (const auto& path : inputs) {
        RunStats run;
        if (!analyzeFile(path, allowDrops, run))
            return 1;
        runs.push_back(std::move(run));
    }

    if (outPath.empty()) {
        writeReport(std::cout, runs);
    } else {
        std::ofstream out(outPath);
        if (!out) {
            std::cerr << "trace_analyze: cannot write " << outPath
                      << "\n";
            return 1;
        }
        writeReport(out, runs);
        std::cout << "attribution report written to " << outPath << "\n";
    }
    for (const auto& run : runs) {
        std::cout << "trace_analyze: " << run.label << ": "
                  << run.invocations << " invocations, mean e2e "
                  << run.e2e.mean() << " s (p99 "
                  << (run.e2e.count > 0 ? run.e2e.sketch.p99() : 0.0)
                  << " s)\n";
    }
    return 0;
}
