/**
 * @file
 * obs_check — validator for the observability artifacts rainbow_sim
 * writes. CI runs it after a simulation to guarantee the artifacts
 * stay loadable by external consumers (Perfetto, notebooks, report
 * tooling):
 *
 *   obs_check --report report.json --trace trace.json --events ev.jsonl
 *
 * Checks per artifact:
 *  * report: parses, schema tag is "rainbowcake-report-v1", at least
 *    one policy entry, every entry carries the required metric keys,
 *    instrumented entries carry counters consistent with invocations.
 *  * trace: parses as JSON, has a non-empty "traceEvents" array with
 *    at least one complete slice ("X"), one instant ("i"), and one
 *    process_name metadata record ("M").
 *  * events: every line parses, ticks are non-decreasing (emission
 *    order is simulated-time order), categories/types are known
 *    names.
 *
 * Exit status 0 when every requested check passes, 1 otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/trace_event.hh"

namespace {

using namespace rc;

int gFailures = 0;

void
fail(const std::string& what)
{
    std::cerr << "obs_check: FAIL: " << what << "\n";
    ++gFailures;
}

std::string
slurp(const std::string& path, bool& ok)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        ok = false;
        return "";
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = true;
    return buffer.str();
}

void
checkReport(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    if (root.stringAt("schema") != "rainbowcake-report-v1") {
        fail(path + ": schema is not rainbowcake-report-v1");
        return;
    }
    const obs::JsonValue* policies = root.find("policies");
    if (!policies || !policies->isArray() || policies->array.empty()) {
        fail(path + ": missing or empty policies array");
        return;
    }
    static const char* kRequired[] = {
        "policy",
        "invocations",
        "startup_counts",
        "mean_startup_seconds",
        "total_startup_seconds",
        "mean_e2e_seconds",
        "p99_e2e_seconds",
        "waste_gb_seconds",
        "never_hit_waste_gb_seconds",
        "stranded",
        "failed",
        "retries",
        "finalize_drained",
    };
    for (const auto& entry : policies->array) {
        const std::string name = entry.stringAt("policy", "<unnamed>");
        for (const char* key : kRequired) {
            if (!entry.find(key))
                fail(path + ": policy " + name + " lacks key " + key);
        }
        // Instrumented runs must expose a lookup-ladder breakdown
        // that accounts for every invocation.
        const obs::JsonValue* counters = entry.find("counters");
        if (!counters)
            continue;
        double ladder = 0.0;
        for (const char* key :
             {"hit_user", "hit_load", "hit_foreign_user", "hit_lang",
              "hit_bare", "cold_start"}) {
            ladder += counters->numberAt(key);
        }
        const double invocations = entry.numberAt("invocations");
        if (ladder < invocations) {
            fail(path + ": policy " + name +
                 ": ladder counters cover fewer dispatches than "
                 "invocations");
        }
    }
    std::cout << "obs_check: report ok (" << policies->array.size()
              << " policies)\n";
}

void
checkTrace(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    const obs::JsonValue* events = root.find("traceEvents");
    if (!events || !events->isArray() || events->array.empty()) {
        fail(path + ": missing or empty traceEvents array");
        return;
    }
    std::size_t slices = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    for (const auto& event : events->array) {
        const std::string phase = event.stringAt("ph");
        if (phase == "X") {
            ++slices;
            if (event.numberAt("dur", -1.0) < 0.0)
                fail(path + ": X slice without non-negative dur");
        } else if (phase == "i") {
            ++instants;
        } else if (phase == "M") {
            ++metadata;
        } else if (phase.empty()) {
            fail(path + ": trace event without ph");
        }
    }
    if (slices == 0)
        fail(path + ": no lifecycle/invocation slices");
    if (metadata == 0)
        fail(path + ": no track metadata records");
    if (gFailures == 0) {
        std::cout << "obs_check: trace ok (" << slices << " slices, "
                  << instants << " instants, " << metadata
                  << " metadata)\n";
    }
}

void
checkEvents(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return;
    }
    std::string error;
    const auto events = obs::parseJsonlEvents(in, &error);
    if (!error.empty()) {
        fail(path + ": " + error);
        return;
    }
    if (events.empty()) {
        fail(path + ": no events");
        return;
    }
    sim::Tick last = events.front().tick;
    for (const auto& event : events) {
        if (event.tick < last) {
            fail(path + ": ticks go backwards");
            return;
        }
        last = event.tick;
    }
    std::cout << "obs_check: events ok (" << events.size()
              << " events)\n";
}

[[noreturn]] void
usage(int code)
{
    std::cout << "obs_check [--report FILE] [--trace FILE] "
                 "[--events FILE]\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char** argv)
{
    bool any = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 >= argc) {
            if (arg == "--help" || arg == "-h")
                usage(0);
            std::cerr << "missing value for " << arg << "\n";
            usage(2);
        }
        const std::string value = argv[++i];
        if (arg == "--report") {
            checkReport(value);
        } else if (arg == "--trace") {
            checkTrace(value);
        } else if (arg == "--events") {
            checkEvents(value);
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage(2);
        }
        any = true;
    }
    if (!any)
        usage(2);
    return gFailures == 0 ? 0 : 1;
}
