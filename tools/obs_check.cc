/**
 * @file
 * obs_check — validator for the observability artifacts rainbow_sim
 * writes. CI runs it after a simulation to guarantee the artifacts
 * stay loadable by external consumers (Perfetto, notebooks, report
 * tooling):
 *
 *   obs_check --report report.json --trace trace.json --events ev.jsonl
 *
 * Checks per artifact:
 *  * report: parses, schema tag is "rainbowcake-report-v1", at least
 *    one policy entry, every entry carries the required metric keys,
 *    instrumented entries carry counters consistent with invocations.
 *  * trace: parses as JSON, has a non-empty "traceEvents" array with
 *    at least one complete slice ("X"), one instant ("i"), and one
 *    process_name metadata record ("M").
 *  * events: every line parses, ticks are non-decreasing (emission
 *    order is simulated-time order), categories/types are known
 *    names.
 *  * spans: the rainbowcake-spans-v1 dump parses, recorded no drops
 *    (CI runs with unbounded span buffers, so any drop is a bug),
 *    lines are in (invocation, id) order, and the span-tree
 *    invariants hold — one root per invocation, causal parent links,
 *    and the conservation tiling: each invocation's stage spans sum
 *    exactly to its end-to-end interval.
 *  * attribution: the rainbowcake-attribution-v1 report parses,
 *    every run carries the required keys, outcome counts sum to the
 *    invocation count, and the component totals conserve the
 *    end-to-end total. When --report is also given (single-policy
 *    artifacts), the attribution totals are cross-validated against
 *    the report's counters: completed/failed/rejected/shed/stranded
 *    outcomes must equal the report fields and the span counts must
 *    match spans_recorded/spans_dropped.
 *  * bench-overload: parses BENCH_overload.json from bench_overload
 *    and asserts the headline overload claim — at 4x offered load,
 *    RainbowCake with admission control holds a strictly lower p99
 *    than RainbowCake without it, and every admission-controlled row
 *    kept its queue within the configured bound.
 *  * fleet: parses the cluster_summary.csv a `rainbow_sim --nodes N
 *    [--shards S]` run writes and asserts fleet-level invocation
 *    conservation — every admitted invocation reached exactly one
 *    terminal state (completed + failed + stranded + rerouted +
 *    rejected + shed_deadline + shed_pressure == admitted). CI runs
 *    this against sharded-core output so a counter-merge bug at the
 *    barrier cannot land silently. The recovery and prewarm
 *    identities from cluster/conservation.hh are checked too: every
 *    outage/upgrade episode rejoins exactly once and every recovery
 *    prewarm is hit, evicted, or wasted. When the run was made with
 *    --phase-timings, the coordinator_phases.csv sidecar next to the
 *    summary is validated as well (subsets within totals, serial
 *    fraction a consistent ratio).
 *
 * Exit status 0 when every requested check passes, 1 otherwise.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <cmath>

#include "cluster/conservation.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "obs/trace_event.hh"

namespace {

using namespace rc;

int gFailures = 0;

void
fail(const std::string& what)
{
    std::cerr << "obs_check: FAIL: " << what << "\n";
    ++gFailures;
}

std::string
slurp(const std::string& path, bool& ok)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        ok = false;
        return "";
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = true;
    return buffer.str();
}

void
checkReport(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    if (root.stringAt("schema") != "rainbowcake-report-v1") {
        fail(path + ": schema is not rainbowcake-report-v1");
        return;
    }
    const obs::JsonValue* policies = root.find("policies");
    if (!policies || !policies->isArray() || policies->array.empty()) {
        fail(path + ": missing or empty policies array");
        return;
    }
    static const char* kRequired[] = {
        "policy",
        "invocations",
        "startup_counts",
        "mean_startup_seconds",
        "total_startup_seconds",
        "mean_e2e_seconds",
        "p99_e2e_seconds",
        "waste_gb_seconds",
        "never_hit_waste_gb_seconds",
        "stranded",
        "failed",
        "retries",
        "finalize_drained",
        "rejected",
        "shed_deadline",
        "shed_pressure",
        "degraded_keepalives",
        "peak_queue_depth",
    };
    for (const auto& entry : policies->array) {
        const std::string name = entry.stringAt("policy", "<unnamed>");
        for (const char* key : kRequired) {
            if (!entry.find(key))
                fail(path + ": policy " + name + " lacks key " + key);
        }
        // Instrumented runs must expose a lookup-ladder breakdown
        // that accounts for every invocation.
        const obs::JsonValue* counters = entry.find("counters");
        if (!counters)
            continue;
        double ladder = 0.0;
        for (const char* key :
             {"hit_user", "hit_load", "hit_foreign_user", "hit_lang",
              "hit_bare", "cold_start"}) {
            ladder += counters->numberAt(key);
        }
        const double invocations = entry.numberAt("invocations");
        if (ladder < invocations) {
            fail(path + ": policy " + name +
                 ": ladder counters cover fewer dispatches than "
                 "invocations");
        }
        // Every ladder outcome was preceded by a pool lookup, so the
        // dispatch-lookup counter must cover the ladder sum (requeued
        // invocations look up more than once). Gated on key presence:
        // reports written before the counter existed stay valid.
        if (counters->find("dispatch_lookups") != nullptr &&
            counters->numberAt("dispatch_lookups") < ladder) {
            fail(path + ": policy " + name +
                 ": dispatch_lookups undercounts the ladder sum");
        }
        // rc::admission counters must agree with the top-level
        // accounting fields every report carries.
        static const std::pair<const char*, const char*> kAdmission[] = {
            {"admission_rejected", "rejected"},
            {"shed_deadline", "shed_deadline"},
            {"shed_pressure", "shed_pressure"},
            {"degraded_keepalives", "degraded_keepalives"},
        };
        for (const auto& [counter, field] : kAdmission) {
            if (counters->numberAt(counter) != entry.numberAt(field)) {
                fail(path + ": policy " + name + ": counter " +
                     counter + " disagrees with report field " + field);
            }
        }
        // CI runs with unbounded buffers: any recorded drop means an
        // artifact silently lost data. Gated on key presence so
        // reports written before the fields existed stay valid.
        for (const char* key : {"events_dropped", "spans_dropped"}) {
            if (entry.find(key) != nullptr && entry.numberAt(key) > 0.0)
                fail(path + ": policy " + name + ": " + key + " is " +
                     std::to_string(entry.numberAt(key)));
        }
        if (counters->find("trace_dropped") != nullptr &&
            counters->numberAt("trace_dropped") > 0.0) {
            fail(path + ": policy " + name +
                 ": trace_dropped counter is nonzero");
        }
    }
    std::cout << "obs_check: report ok (" << policies->array.size()
              << " policies)\n";
}

void
checkTrace(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    const obs::JsonValue* events = root.find("traceEvents");
    if (!events || !events->isArray() || events->array.empty()) {
        fail(path + ": missing or empty traceEvents array");
        return;
    }
    std::size_t slices = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    for (const auto& event : events->array) {
        const std::string phase = event.stringAt("ph");
        if (phase == "X") {
            ++slices;
            if (event.numberAt("dur", -1.0) < 0.0)
                fail(path + ": X slice without non-negative dur");
        } else if (phase == "i") {
            ++instants;
        } else if (phase == "M") {
            ++metadata;
        } else if (phase.empty()) {
            fail(path + ": trace event without ph");
        }
    }
    if (slices == 0)
        fail(path + ": no lifecycle/invocation slices");
    if (metadata == 0)
        fail(path + ": no track metadata records");
    if (gFailures == 0) {
        std::cout << "obs_check: trace ok (" << slices << " slices, "
                  << instants << " instants, " << metadata
                  << " metadata)\n";
    }
}

void
checkEvents(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return;
    }
    std::string error;
    const auto events = obs::parseJsonlEvents(in, &error);
    if (!error.empty()) {
        fail(path + ": " + error);
        return;
    }
    if (events.empty()) {
        fail(path + ": no events");
        return;
    }
    sim::Tick last = events.front().tick;
    // Quarantine lifecycle per node: probes and readmissions are only
    // legal while the node is out of rotation, and a readmission needs
    // at least one probe behind it. A second NodeQuarantined without
    // an intervening readmission is the probation-breach edge and is
    // legal.
    std::map<std::uint8_t, bool> inQuarantine;
    std::map<std::uint8_t, std::uint64_t> probesSinceQuarantine;
    std::uint64_t hedgesLaunched = 0;
    std::uint64_t hedgesWon = 0;
    std::uint64_t hedgesCancelled = 0;
    std::uint64_t hedgesLost = 0;
    for (const auto& event : events) {
        if (event.tick < last) {
            fail(path + ": ticks go backwards");
            return;
        }
        last = event.tick;
        switch (event.type) {
        case obs::EventType::NodeQuarantined:
            inQuarantine[event.a] = true;
            probesSinceQuarantine[event.a] = 0;
            break;
        case obs::EventType::NodeProbed:
            if (!inQuarantine[event.a]) {
                fail(path + ": node " + std::to_string(event.a) +
                     " probed while healthy");
            }
            ++probesSinceQuarantine[event.a];
            break;
        case obs::EventType::NodeReadmitted:
            if (!inQuarantine[event.a]) {
                fail(path + ": node " + std::to_string(event.a) +
                     " readmitted while healthy");
            } else if (probesSinceQuarantine[event.a] == 0) {
                fail(path + ": node " + std::to_string(event.a) +
                     " readmitted without a probe");
            }
            inQuarantine[event.a] = false;
            break;
        case obs::EventType::HedgeLaunched:
            ++hedgesLaunched;
            break;
        case obs::EventType::HedgeWon:
            ++hedgesWon;
            break;
        case obs::EventType::HedgeCancelled:
            ++hedgesCancelled;
            break;
        case obs::EventType::HedgeLost:
            ++hedgesLost;
            break;
        default:
            break;
        }
    }
    if (!cluster::conservation::hedgeIdentity(hedgesLaunched, hedgesWon,
                                              hedgesCancelled,
                                              hedgesLost)) {
        fail(path + ": hedge event identity broken: " +
             std::to_string(hedgesLaunched) + " launched vs " +
             std::to_string(hedgesWon) + " won + " +
             std::to_string(hedgesCancelled) + " cancelled + " +
             std::to_string(hedgesLost) + " lost");
    }
    std::cout << "obs_check: events ok (" << events.size()
              << " events)\n";
}

void
checkSpans(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return;
    }
    std::string error;
    std::uint64_t dropped = 0;
    const auto spans = obs::parseJsonlSpans(in, &error, &dropped);
    if (!error.empty()) {
        fail(path + ": " + error);
        return;
    }
    if (dropped > 0) {
        fail(path + ": " + std::to_string(dropped) +
             " spans dropped (CI span buffers must be unbounded)");
    }
    if (spans.empty()) {
        fail(path + ": no spans");
        return;
    }
    for (std::size_t i = 1; i < spans.size(); ++i) {
        if (obs::spanBefore(spans[i], spans[i - 1])) {
            fail(path + ": dump is not in (invocation, id) order at "
                 "line " + std::to_string(i + 2));
            return;
        }
    }
    if (!obs::validateSpanTree(spans, &error)) {
        fail(path + ": " + error);
        return;
    }
    if (gFailures == 0) {
        std::cout << "obs_check: spans ok (" << spans.size()
                  << " spans, tree + conservation hold)\n";
    }
}

/** Attribution outcome fields that mirror report counters. */
constexpr const char* kOutcomeNames[] = {
    "completed", "failed",   "rejected", "shed_deadline",
    "shed_pressure", "rerouted", "stranded",
};

void
checkAttribution(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    if (root.stringAt("schema") != "rainbowcake-attribution-v1") {
        fail(path + ": schema is not rainbowcake-attribution-v1");
        return;
    }
    const obs::JsonValue* runs = root.find("runs");
    if (!runs || !runs->isArray() || runs->array.empty()) {
        fail(path + ": missing or empty runs array");
        return;
    }
    for (const auto& run : runs->array) {
        const std::string label = run.stringAt("label", "<unnamed>");
        for (const char* key : {"spans", "dropped", "invocations",
                                "outcomes", "e2e", "components",
                                "functions"}) {
            if (!run.find(key))
                fail(path + ": run " + label + " lacks key " + key);
        }
        const obs::JsonValue* outcomes = run.find("outcomes");
        if (outcomes != nullptr) {
            double sum = 0.0;
            for (const char* name : kOutcomeNames)
                sum += outcomes->numberAt(name);
            if (sum != run.numberAt("invocations")) {
                fail(path + ": run " + label +
                     ": outcome counts do not sum to invocations");
            }
        }
        // Conservation, fleet-wide: per invocation the components
        // tile [arrival, terminal] exactly, so the component totals
        // must reproduce the end-to-end total (tolerance covers the
        // different double summation orders).
        const obs::JsonValue* e2e = run.find("e2e");
        const obs::JsonValue* components = run.find("components");
        if (e2e != nullptr && components != nullptr) {
            if (e2e->numberAt("count") != run.numberAt("invocations")) {
                fail(path + ": run " + label +
                     ": e2e count disagrees with invocations");
            }
            double componentTotal = 0.0;
            for (const auto& [name, track] : components->object)
                componentTotal += track.numberAt("total_s");
            const double e2eTotal = e2e->numberAt("total_s");
            const double slack =
                1e-6 * std::max(1.0, std::abs(e2eTotal));
            if (std::abs(componentTotal - e2eTotal) > slack) {
                fail(path + ": run " + label +
                     ": components total " +
                     std::to_string(componentTotal) +
                     " s does not conserve e2e total " +
                     std::to_string(e2eTotal) + " s");
            }
        }
        if (run.numberAt("dropped") > 0.0)
            fail(path + ": run " + label + ": attribution built from "
                 "a dump with drops");
    }
    if (gFailures == 0) {
        std::cout << "obs_check: attribution ok ("
                  << runs->array.size() << " runs, conservation holds)\n";
    }
}

/**
 * Cross-validate a single-policy report against a single-run
 * attribution: the span outcomes and the report's own accounting
 * fields describe the same run, so they must agree exactly.
 */
void
crossCheckAttribution(const std::string& reportPath,
                      const std::string& attributionPath)
{
    bool ok = false;
    const std::string reportText = slurp(reportPath, ok);
    if (!ok)
        return;
    const std::string attributionText = slurp(attributionPath, ok);
    if (!ok)
        return;
    obs::JsonValue report;
    obs::JsonValue attribution;
    if (!obs::parseJson(reportText, report) ||
        !obs::parseJson(attributionText, attribution))
        return; // the per-artifact checks already failed loudly
    const obs::JsonValue* policies = report.find("policies");
    const obs::JsonValue* runs = attribution.find("runs");
    if (!policies || !policies->isArray() || !runs || !runs->isArray())
        return;
    if (policies->array.size() != 1 || runs->array.size() != 1) {
        std::cout << "obs_check: cross-check skipped (needs exactly "
                     "one policy and one attribution run)\n";
        return;
    }
    const obs::JsonValue& policy = policies->array.front();
    const obs::JsonValue& run = runs->array.front();
    const obs::JsonValue* outcomes = run.find("outcomes");
    if (outcomes == nullptr) {
        fail(attributionPath + ": run lacks outcomes");
        return;
    }
    static const std::pair<const char*, const char*> kPairs[] = {
        {"completed", "invocations"}, {"failed", "failed"},
        {"rejected", "rejected"},     {"shed_deadline", "shed_deadline"},
        {"shed_pressure", "shed_pressure"}, {"stranded", "stranded"},
    };
    for (const auto& [outcome, field] : kPairs) {
        if (outcomes->numberAt(outcome) != policy.numberAt(field)) {
            fail("cross-check: attribution outcome " +
                 std::string(outcome) + " (" +
                 std::to_string(outcomes->numberAt(outcome)) +
                 ") disagrees with report field " + field + " (" +
                 std::to_string(policy.numberAt(field)) + ")");
        }
    }
    if (policy.find("spans_recorded") != nullptr &&
        policy.numberAt("spans_recorded") != run.numberAt("spans")) {
        fail("cross-check: attribution span count disagrees with "
             "report spans_recorded");
    }
    if (policy.find("spans_dropped") != nullptr &&
        policy.numberAt("spans_dropped") != run.numberAt("dropped")) {
        fail("cross-check: attribution drop count disagrees with "
             "report spans_dropped");
    }
    if (gFailures == 0)
        std::cout << "obs_check: attribution/report cross-check ok\n";
}

void
checkBenchOverload(const std::string& path)
{
    bool ok = false;
    const std::string text = slurp(path, ok);
    if (!ok)
        return;
    obs::JsonValue root;
    std::string error;
    if (!obs::parseJson(text, root, &error)) {
        fail(path + ": " + error);
        return;
    }
    if (root.stringAt("schema") != "rainbowcake-bench-overload-v1") {
        fail(path + ": schema is not rainbowcake-bench-overload-v1");
        return;
    }
    const obs::JsonValue* rows = root.find("rows");
    if (!rows || !rows->isArray() || rows->array.empty()) {
        fail(path + ": missing or empty rows array");
        return;
    }
    static const char* kRowKeys[] = {
        "policy",        "admission",  "load",
        "p99_e2e_seconds", "mean_e2e_seconds", "completed",
        "rejected",      "shed_deadline", "shed_pressure",
        "peak_queue",    "max_queue_depth", "stranded",
    };
    double p99With = -1.0;
    double p99Without = -1.0;
    for (const auto& row : rows->array) {
        const std::string policy = row.stringAt("policy", "<unnamed>");
        for (const char* key : kRowKeys) {
            if (!row.find(key))
                fail(path + ": row " + policy + " lacks key " + key);
        }
        const obs::JsonValue* admissionField = row.find("admission");
        const bool admission =
            admissionField &&
            (admissionField->kind == obs::JsonValue::Kind::Bool
                 ? admissionField->boolean
                 : admissionField->number != 0.0);
        const double load = row.numberAt("load");
        // Bounded-queue invariant for every admission-controlled row.
        const double bound = row.numberAt("max_queue_depth");
        if (admission && bound > 0.0 &&
            row.numberAt("peak_queue") > bound) {
            fail(path + ": row " + policy + " load " +
                 std::to_string(load) + " exceeded its queue bound");
        }
        if (policy == "RainbowCake" && load == 4.0) {
            if (admission)
                p99With = row.numberAt("p99_e2e_seconds");
            else
                p99Without = row.numberAt("p99_e2e_seconds");
        }
    }
    if (p99With < 0.0 || p99Without < 0.0) {
        fail(path + ": missing RainbowCake rows at 4x load");
        return;
    }
    // The headline claim: admission control buys a strictly better
    // tail under sustained 4x overload.
    if (!(p99With < p99Without)) {
        fail(path + ": admission p99 " + std::to_string(p99With) +
             " is not below no-admission p99 " +
             std::to_string(p99Without) + " at 4x load");
    }
    if (gFailures == 0) {
        std::cout << "obs_check: bench-overload ok (" << rows->array.size()
                  << " rows, 4x p99 " << p99With << " < " << p99Without
                  << ")\n";
    }
}

/** Split one CSV line on commas (no quoting in our artifacts). */
std::vector<std::string>
splitCsv(const std::string& line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream in(line);
    while (std::getline(in, cell, ','))
        cells.push_back(cell);
    return cells;
}

/**
 * Validate the coordinator_phases.csv sidecar: subsets must not
 * exceed their total, the serial fraction must be a valid ratio, and
 * it must agree with the phase totals it claims to summarize.
 */
void
checkCoordinatorPhases(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return;
    }
    std::string header;
    std::string row;
    if (!std::getline(in, header) || !std::getline(in, row)) {
        fail(path + ": expected a header and a row");
        return;
    }
    if (header != "coordinator_drain_ns,route_ns,summary_capture_ns,"
                  "parallel_ns,serial_fraction") {
        fail(path + ": unexpected header: " + header);
        return;
    }
    const auto cells = splitCsv(row);
    if (cells.size() != 5) {
        fail(path + ": expected 5 columns, got " +
             std::to_string(cells.size()));
        return;
    }
    double coordinator = 0.0;
    double route = 0.0;
    double summary = 0.0;
    double parallel = 0.0;
    double fraction = 0.0;
    try {
        coordinator = std::stod(cells[0]);
        route = std::stod(cells[1]);
        summary = std::stod(cells[2]);
        parallel = std::stod(cells[3]);
        fraction = std::stod(cells[4]);
    } catch (const std::exception&) {
        fail(path + ": non-numeric cell in " + row);
        return;
    }
    if (coordinator <= 0.0 || parallel <= 0.0)
        fail(path + ": phase totals must be positive: " + row);
    if (route + summary > coordinator) {
        fail(path + ": route + summary exceed the coordinator total: " +
             row);
    }
    if (fraction < 0.0 || fraction > 1.0)
        fail(path + ": serial fraction outside [0, 1]: " + row);
    // The printed fraction is coordinator / (coordinator + parallel);
    // allow slack for the CSV's default float precision.
    if (coordinator + parallel > 0.0) {
        const double expected = coordinator / (coordinator + parallel);
        if (fraction > expected + 0.01 || fraction < expected - 0.01) {
            fail(path + ": serial fraction inconsistent with phase "
                        "totals: " + row);
        }
    }
    if (gFailures == 0) {
        std::cout << "obs_check: coordinator phases ok (serial "
                     "fraction " << fraction << ")\n";
    }
}

void
checkFleetSummary(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return;
    }
    std::string header;
    std::string row;
    if (!std::getline(in, header) || !std::getline(in, row)) {
        fail(path + ": expected a header and a summary row");
        return;
    }
    const auto names = splitCsv(header);
    const auto cells = splitCsv(row);
    if (names.size() != cells.size()) {
        fail(path + ": header/row column count mismatch");
        return;
    }
    std::map<std::string, std::string> columns;
    for (std::size_t i = 0; i < names.size(); ++i)
        columns[names[i]] = cells[i];

    std::map<std::string, unsigned long long> counters;
    for (const char* key :
         {"nodes", "windows", "invocations", "stranded", "rerouted",
          "failed", "rejected", "shed_deadline", "shed_pressure",
          "admitted", "engine_events", "cancelled", "hedges_launched",
          "hedges_won", "hedges_cancelled", "hedges_lost", "duplicates",
          "quarantines", "probes", "partitions", "msgs_delayed",
          "msgs_dropped", "domain_outages", "outage_episodes",
          "upgrade_episodes", "nodes_drained", "nodes_killed",
          "recovered_nodes", "prewarm_layers", "prewarm_hit",
          "prewarm_evicted", "prewarm_wasted", "retries_feedback"}) {
        const auto it = columns.find(key);
        if (it == columns.end()) {
            fail(path + ": summary lacks column " + key);
            return;
        }
        try {
            counters[key] = std::stoull(it->second);
        } catch (const std::exception&) {
            fail(path + ": column " + key + " is not a count: " +
                 it->second);
            return;
        }
    }

    if (counters["nodes"] == 0)
        fail(path + ": zero nodes");
    if (counters["windows"] == 0)
        fail(path + ": zero windows");
    if (counters["invocations"] == 0)
        fail(path + ": zero completed invocations");

    // Fleet conservation: each admitted invocation reached exactly
    // one terminal state. A counter-merge bug in the sharded core
    // (dropped outbox entry, double-counted crash loss) breaks this
    // identity in one direction or the other.
    if (!cluster::conservation::fleetConservation(
            counters["invocations"], counters["failed"],
            counters["stranded"], counters["rerouted"],
            counters["rejected"], counters["shed_deadline"],
            counters["shed_pressure"], counters["cancelled"],
            counters["admitted"])) {
        fail(path + ": fleet conservation broken against admitted " +
             std::to_string(counters["admitted"]));
    }
    // Hedge pairs settle exactly once: the winner commits and the
    // loser is either cancelled in time or finishes as a duplicate.
    if (!cluster::conservation::hedgeIdentity(
            counters["hedges_launched"], counters["hedges_won"],
            counters["hedges_cancelled"], counters["hedges_lost"])) {
        fail(path + ": hedge identity broken: " +
             std::to_string(counters["hedges_launched"]) +
             " launched vs " + std::to_string(counters["hedges_won"]) +
             " won + " + std::to_string(counters["hedges_cancelled"]) +
             " cancelled + " + std::to_string(counters["hedges_lost"]) +
             " lost");
    }
    // Recovery: every outage/upgrade episode rejoins exactly once and
    // every planned drain ends gracefully or by the timeout kill.
    if (!cluster::conservation::recoveryIdentity(
            counters["recovered_nodes"], counters["outage_episodes"],
            counters["upgrade_episodes"], counters["nodes_drained"],
            counters["nodes_killed"])) {
        fail(path + ": recovery identity broken: " +
             std::to_string(counters["recovered_nodes"]) +
             " recovered vs " +
             std::to_string(counters["outage_episodes"]) +
             " outage + " +
             std::to_string(counters["upgrade_episodes"]) +
             " upgrade episodes (" +
             std::to_string(counters["nodes_drained"]) + " drained, " +
             std::to_string(counters["nodes_killed"]) + " killed)");
    }
    // Every recovery prewarm settles exactly once: claimed by a
    // dispatch, evicted under pressure, or wasted.
    if (!cluster::conservation::prewarmIdentity(
            counters["prewarm_layers"], counters["prewarm_hit"],
            counters["prewarm_evicted"], counters["prewarm_wasted"])) {
        fail(path + ": prewarm identity broken: " +
             std::to_string(counters["prewarm_layers"]) +
             " issued vs " + std::to_string(counters["prewarm_hit"]) +
             " hit + " + std::to_string(counters["prewarm_evicted"]) +
             " evicted + " +
             std::to_string(counters["prewarm_wasted"]) + " wasted");
    }
    if (counters["duplicates"] > counters["hedges_launched"]) {
        fail(path + ": more duplicate completions than hedges "
                    "launched");
    }
    // Coordinator phase sidecar (written by rainbow_sim under
    // --phase-timings only): wall-clock numbers are host-dependent,
    // but the internal accounting must still be consistent. Gated on
    // existence like every other optional artifact.
    const std::filesystem::path sidecar =
        std::filesystem::path(path).parent_path() /
        "coordinator_phases.csv";
    if (std::filesystem::exists(sidecar))
        checkCoordinatorPhases(sidecar.string());

    if (gFailures == 0) {
        std::cout << "obs_check: fleet ok (" << counters["admitted"]
                  << " admitted on " << counters["nodes"]
                  << " nodes, conservation holds)\n";
    }
}

[[noreturn]] void
usage(int code)
{
    std::cout << "obs_check [--report FILE] [--trace FILE] "
                 "[--events FILE] [--spans FILE] "
                 "[--attribution FILE] [--bench-overload FILE] "
                 "[--fleet FILE]\n"
                 "  --report + --attribution together also "
                 "cross-validate the two.\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char** argv)
{
    bool any = false;
    std::string reportPath;
    std::string attributionPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 >= argc) {
            if (arg == "--help" || arg == "-h")
                usage(0);
            std::cerr << "missing value for " << arg << "\n";
            usage(2);
        }
        const std::string value = argv[++i];
        if (arg == "--report") {
            reportPath = value;
            checkReport(value);
        } else if (arg == "--trace") {
            checkTrace(value);
        } else if (arg == "--events") {
            checkEvents(value);
        } else if (arg == "--spans") {
            checkSpans(value);
        } else if (arg == "--attribution") {
            attributionPath = value;
            checkAttribution(value);
        } else if (arg == "--bench-overload") {
            checkBenchOverload(value);
        } else if (arg == "--fleet") {
            checkFleetSummary(value);
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage(2);
        }
        any = true;
    }
    if (!any)
        usage(2);
    if (!reportPath.empty() && !attributionPath.empty())
        crossCheckAttribution(reportPath, attributionPath);
    return gFailures == 0 ? 0 : 1;
}
