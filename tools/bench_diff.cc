/**
 * @file
 * bench_diff — compare two benchmark snapshots and print regressions.
 *
 * Both inputs are BENCH_*.json files, either the shared flat schema
 * `[{bench, metric, value, unit, threads}, ...]` as written by
 * bench_micro_engine, bench_micro_pool, bench_scale_fleet, and
 * bench_recovery_storm, or the `rainbowcake-bench-overload-v1`
 * object schema bench_overload writes ({schema, rows: [...]}); rows
 * are flattened into one record per (row, numeric field) so the two
 * shapes diff identically. The tool joins records on (bench, metric,
 * threads) and reports every pair whose value moved against that
 * metric's "good" direction by more than the tolerance.
 *
 *   bench_diff OLD.json NEW.json [--tolerance PCT] [--fail-on-regression]
 *
 * Higher is better for throughput-style metrics (events/sec,
 * speedups, hit rates); lower is better for time- and cost-style
 * metrics (wall seconds, us/invocation). The direction is inferred
 * from the unit/metric name; unknown metrics default to
 * higher-is-better. Exit status is 1 under --fail-on-regression when
 * any regression exceeds the tolerance (default 10%).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.hh"

namespace {

struct Record
{
    std::string bench;
    std::string metric;
    double value = 0.0;
    std::string unit;
    long threads = 1;
};

using Key = std::tuple<std::string, std::string, long>;

bool
loadSnapshot(const std::string& path, std::map<Key, Record>& out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bench_diff: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    rc::obs::JsonValue root;
    std::string error;
    if (!rc::obs::parseJson(buffer.str(), root, &error)) {
        std::cerr << "bench_diff: " << path << ": " << error << "\n";
        return false;
    }
    // bench_overload writes an object: {schema:
    // "rainbowcake-bench-overload-v1", rows: [{policy, admission,
    // load, p99_e2e_seconds, ...}]}. Flatten each row's numeric
    // fields into flat-schema records keyed by a synthetic bench name
    // so both snapshot shapes join the same way.
    if (root.isObject() &&
        root.stringAt("schema") == "rainbowcake-bench-overload-v1") {
        const rc::obs::JsonValue* rows = root.find("rows");
        if (!rows || !rows->isArray()) {
            std::cerr << "bench_diff: " << path
                      << ": overload snapshot lacks a rows array\n";
            return false;
        }
        for (const auto& row : rows->array) {
            if (!row.isObject())
                continue;
            const rc::obs::JsonValue* admissionField =
                row.find("admission");
            const bool admission =
                admissionField &&
                (admissionField->kind ==
                         rc::obs::JsonValue::Kind::Bool
                     ? admissionField->boolean
                     : admissionField->number != 0.0);
            std::ostringstream bench;
            bench << "overload/" << row.stringAt("policy", "<unnamed>")
                  << (admission ? "+admission" : "") << "@"
                  << row.numberAt("load") << "x";
            for (const auto& [name, field] : row.object) {
                if (field.kind != rc::obs::JsonValue::Kind::Number ||
                    name == "load")
                    continue;
                Record record;
                record.bench = bench.str();
                record.metric = name;
                record.value = field.number;
                if (name.find("seconds") != std::string::npos)
                    record.unit = "seconds";
                out[{record.bench, record.metric, record.threads}] =
                    record;
            }
        }
        return true;
    }
    if (!root.isArray()) {
        std::cerr << "bench_diff: " << path
                  << ": expected a top-level array or an overload "
                     "snapshot object\n";
        return false;
    }
    for (const auto& entry : root.array) {
        if (!entry.isObject())
            continue;
        Record record;
        record.bench = entry.stringAt("bench");
        record.metric = entry.stringAt("metric");
        record.value = entry.numberAt("value");
        record.unit = entry.stringAt("unit");
        record.threads = static_cast<long>(entry.numberAt("threads", 1));
        out[{record.bench, record.metric, record.threads}] = record;
    }
    return true;
}

/** True when a smaller value of this metric is an improvement. */
bool
lowerIsBetter(const Record& record)
{
    // Recovery latency first: time_to_goodput is a time even though
    // it names goodput.
    if (record.metric.find("time_to") != std::string::npos)
        return true;
    // Throughput-style names win over the substring scan below:
    // "goodput_per_second" must stay higher-is-better even though its
    // unit mentions seconds.
    for (const char* needle : {"goodput", "completed", "throughput"}) {
        if (record.metric.find(needle) != std::string::npos)
            return false;
    }
    for (const char* needle :
         {"seconds", "us_per", "us/", "ns/", "wall", "latency",
          "cold", "p99", "p999", "time_to", "queue", "wasted",
          "shed", "rejected", "stranded"}) {
        if (record.metric.find(needle) != std::string::npos ||
            record.unit.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> paths;
    double tolerancePct = 10.0;
    bool failOnRegression = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerancePct = std::stod(argv[++i]);
        } else if (std::strcmp(argv[i], "--fail-on-regression") == 0) {
            failOnRegression = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::cout << "bench_diff OLD.json NEW.json "
                         "[--tolerance PCT] [--fail-on-regression]\n";
            return 0;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        std::cerr << "bench_diff: need exactly two snapshot paths\n";
        return 2;
    }

    std::map<Key, Record> before;
    std::map<Key, Record> after;
    if (!loadSnapshot(paths[0], before) ||
        !loadSnapshot(paths[1], after))
        return 2;

    std::size_t compared = 0;
    std::size_t regressions = 0;
    for (const auto& [key, newRecord] : after) {
        const auto it = before.find(key);
        if (it == before.end()) {
            std::cout << "NEW        " << newRecord.bench << " :: "
                      << newRecord.metric << " = " << newRecord.value
                      << " " << newRecord.unit << "\n";
            continue;
        }
        ++compared;
        const Record& oldRecord = it->second;
        if (oldRecord.value == 0.0)
            continue;
        const double deltaPct =
            (newRecord.value - oldRecord.value) / oldRecord.value *
            100.0;
        const bool worse = lowerIsBetter(newRecord) ? deltaPct > 0.0
                                                    : deltaPct < 0.0;
        const char* tag = "ok        ";
        if (worse && (deltaPct > tolerancePct ||
                      deltaPct < -tolerancePct)) {
            tag = "REGRESSION";
            ++regressions;
        } else if (worse) {
            tag = "worse     ";
        }
        std::cout << tag << " " << newRecord.bench << " :: "
                  << newRecord.metric << " " << oldRecord.value
                  << " -> " << newRecord.value << " " << newRecord.unit
                  << " (" << (deltaPct >= 0.0 ? "+" : "") << deltaPct
                  << "%)\n";
    }
    for (const auto& [key, oldRecord] : before) {
        if (after.find(key) == after.end()) {
            std::cout << "GONE       " << oldRecord.bench << " :: "
                      << oldRecord.metric << "\n";
        }
    }
    std::cout << compared << " metrics compared, " << regressions
              << " regression(s) beyond " << tolerancePct << "%\n";
    return failOnRegression && regressions > 0 ? 1 : 0;
}
